//! Deterministic heterogeneity scenarios: per-node compute speed factors,
//! per-link latency/bandwidth jitter and straggler injection.
//!
//! The paper's SSP experiments (Figures 6–7) hinge on *heterogeneous* rank
//! progress: stragglers and jitter are what bounded staleness buys slack
//! against.  A [`Scenario`] describes that heterogeneity as a small set of
//! seeded parameters; [`Scenario::materialize`] expands it against a concrete
//! [`ClusterSpec`] into per-node and per-link factors.  All randomness comes
//! from a [`SplitMix64`] stream threaded through explicitly — there is no
//! global RNG, so the same seed always yields the same cluster, which keeps
//! the figure-regeneration binaries reproducible.

use crate::cluster::{ClusterSpec, NodeId};

/// Minimal splitmix64 PRNG: deterministic, seedable, state is a single `u64`.
///
/// Used for scenario materialization and per-link jitter hashing; it is *not*
/// a cryptographic generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[-1, 1)`.
    pub fn next_symmetric_f64(&mut self) -> f64 {
        2.0 * self.next_unit_f64() - 1.0
    }

    /// Uniform integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Stateless finalizer: hash an arbitrary 64-bit value into 64 random
    /// bits.  Used for per-link jitter so link factors need no O(nodes²)
    /// table.
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seeded description of cluster heterogeneity.
///
/// A scenario is applied to an [`crate::Engine`] via
/// [`crate::Engine::with_scenario`]; the default scenario (all jitter zero,
/// no stragglers) reproduces the homogeneous cluster exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed for all scenario randomness (node speeds, straggler choice,
    /// link jitter).
    pub seed: u64,
    /// Relative half-width of the per-node compute speed distribution: each
    /// node's local-operation durations are scaled by a factor drawn
    /// uniformly from `[1 - j, 1 + j]`.
    pub compute_jitter: f64,
    /// Relative half-width of the per-link latency jitter: each directed
    /// node pair's `alpha` is scaled by a factor in `[1 - j, 1 + j]`.
    pub latency_jitter: f64,
    /// Relative half-width of the per-link bandwidth jitter: each directed
    /// node pair's `beta` (serialization time) is scaled by a factor in
    /// `[1 - j, 1 + j]`.
    pub bandwidth_jitter: f64,
    /// Fraction of nodes (rounded to the nearest count) injected as
    /// stragglers.
    pub straggler_fraction: f64,
    /// Extra compute-scale multiplier applied to straggler nodes (>= 1;
    /// 4.0 means local operations take 4x as long).
    pub straggler_slowdown: f64,
}

impl Scenario {
    /// A neutral scenario (no jitter, no stragglers) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            compute_jitter: 0.0,
            latency_jitter: 0.0,
            bandwidth_jitter: 0.0,
            straggler_fraction: 0.0,
            straggler_slowdown: 1.0,
        }
    }

    /// Set the per-node compute speed jitter (relative half-width in `[0, 1)`).
    pub fn with_compute_jitter(mut self, jitter: f64) -> Self {
        self.compute_jitter = jitter;
        self
    }

    /// Set the per-link latency and bandwidth jitter (relative half-widths).
    pub fn with_link_jitter(mut self, latency: f64, bandwidth: f64) -> Self {
        self.latency_jitter = latency;
        self.bandwidth_jitter = bandwidth;
        self
    }

    /// Inject stragglers: `fraction` of the nodes run their local operations
    /// `slowdown` times slower.
    pub fn with_stragglers(mut self, fraction: f64, slowdown: f64) -> Self {
        self.straggler_fraction = fraction;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Check the parameters are physically meaningful.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v, hi) in [
            ("compute_jitter", self.compute_jitter, 1.0),
            ("latency_jitter", self.latency_jitter, 1.0),
            ("bandwidth_jitter", self.bandwidth_jitter, 1.0),
            ("straggler_fraction", self.straggler_fraction, 1.0 + 1e-12),
        ] {
            if !v.is_finite() || v < 0.0 || v >= hi {
                return Err(format!("scenario parameter {name} must be finite and in [0, {hi})"));
            }
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return Err("straggler_slowdown must be finite and >= 1.0".to_owned());
        }
        Ok(())
    }

    /// Expand the scenario against a concrete cluster into per-node compute
    /// scales and per-link jitter factors.
    pub fn materialize(&self, cluster: &ClusterSpec) -> ScenarioInstance {
        let nodes = cluster.nodes;
        let mut rng = SplitMix64::new(self.seed);
        // Per-node speed: uniform in [1 - j, 1 + j].  The scale multiplies
        // durations, so a factor > 1 is a *slower* node.
        let mut node_compute_scale: Vec<f64> =
            (0..nodes).map(|_| 1.0 + self.compute_jitter * rng.next_symmetric_f64()).collect();
        // Straggler choice: partial Fisher-Yates over the node ids so exactly
        // `k` distinct nodes are picked, deterministically in the seed.
        let k = ((self.straggler_fraction * nodes as f64).round() as usize).min(nodes);
        let mut ids: Vec<NodeId> = (0..nodes).collect();
        let mut straggler = vec![false; nodes];
        for i in 0..k {
            let j = i + rng.next_below(nodes - i);
            ids.swap(i, j);
            straggler[ids[i]] = true;
            node_compute_scale[ids[i]] *= self.straggler_slowdown;
        }
        ScenarioInstance {
            node_compute_scale,
            straggler,
            link_seed: SplitMix64::mix(self.seed ^ 0xA076_1D64_78BD_642F),
            latency_jitter: self.latency_jitter,
            bandwidth_jitter: self.bandwidth_jitter,
        }
    }
}

/// A [`Scenario`] expanded against a concrete cluster.
///
/// Node factors are materialized as a table; link factors are computed on
/// demand by hashing the directed node pair, so a 1024-node cluster needs no
/// O(nodes²) storage.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioInstance {
    node_compute_scale: Vec<f64>,
    straggler: Vec<bool>,
    link_seed: u64,
    latency_jitter: f64,
    bandwidth_jitter: f64,
}

impl ScenarioInstance {
    /// Duration multiplier for local operations executed on `node` (> 1 is
    /// slower than nominal).
    pub fn compute_scale(&self, node: NodeId) -> f64 {
        self.node_compute_scale[node]
    }

    /// Whether `node` was selected as a straggler.
    pub fn is_straggler(&self, node: NodeId) -> bool {
        self.straggler[node]
    }

    /// Number of injected straggler nodes.
    pub fn straggler_count(&self) -> usize {
        self.straggler.iter().filter(|&&s| s).count()
    }

    fn link_factor(&self, src: NodeId, dst: NodeId, salt: u64, jitter: f64) -> f64 {
        if jitter == 0.0 {
            return 1.0;
        }
        let h = SplitMix64::mix(self.link_seed ^ salt ^ ((src as u64) << 32 | dst as u64));
        let sym = 2.0 * ((h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) - 1.0;
        1.0 + jitter * sym
    }

    /// Latency (`alpha`) multiplier of the directed link `src -> dst`.
    pub fn link_alpha_scale(&self, src: NodeId, dst: NodeId) -> f64 {
        self.link_factor(src, dst, 0x9E37_79B9, self.latency_jitter)
    }

    /// Serialization (`beta`) multiplier of the directed link `src -> dst`.
    pub fn link_beta_scale(&self, src: NodeId, dst: NodeId) -> f64 {
        self.link_factor(src, dst, 0x85EB_CA6B, self.bandwidth_jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            let u = r.next_unit_f64();
            assert!((0.0..1.0).contains(&u));
            let s = r.next_symmetric_f64();
            assert!((-1.0..1.0).contains(&s));
        }
    }

    #[test]
    fn neutral_scenario_is_homogeneous() {
        let inst = Scenario::new(1).materialize(&ClusterSpec::homogeneous(16, 1));
        for n in 0..16 {
            assert_eq!(inst.compute_scale(n), 1.0);
            assert!(!inst.is_straggler(n));
            assert_eq!(inst.link_alpha_scale(n, (n + 1) % 16), 1.0);
            assert_eq!(inst.link_beta_scale(n, (n + 1) % 16), 1.0);
        }
        assert_eq!(inst.straggler_count(), 0);
    }

    #[test]
    fn same_seed_same_instance() {
        let cluster = ClusterSpec::homogeneous(64, 2);
        let s = Scenario::new(99).with_compute_jitter(0.3).with_link_jitter(0.2, 0.1).with_stragglers(0.1, 4.0);
        assert_eq!(s.materialize(&cluster), s.materialize(&cluster));
        let other = Scenario { seed: 100, ..s.clone() };
        assert_ne!(s.materialize(&cluster), other.materialize(&cluster));
    }

    #[test]
    fn straggler_count_matches_fraction() {
        let cluster = ClusterSpec::homogeneous(100, 1);
        let inst = Scenario::new(5).with_stragglers(0.07, 8.0).materialize(&cluster);
        assert_eq!(inst.straggler_count(), 7);
        for n in 0..100 {
            if inst.is_straggler(n) {
                assert!(inst.compute_scale(n) >= 8.0 * (1.0 - 1e-12));
            } else {
                assert_eq!(inst.compute_scale(n), 1.0);
            }
        }
    }

    #[test]
    fn jitter_bounds_are_respected() {
        let cluster = ClusterSpec::homogeneous(256, 1);
        let inst = Scenario::new(3).with_compute_jitter(0.25).with_link_jitter(0.2, 0.15).materialize(&cluster);
        for n in 0..256 {
            let c = inst.compute_scale(n);
            assert!((0.75..=1.25).contains(&c), "compute scale {c} out of range");
            let a = inst.link_alpha_scale(n, (n + 7) % 256);
            assert!((0.8..=1.2).contains(&a), "alpha scale {a} out of range");
            let b = inst.link_beta_scale(n, (n + 7) % 256);
            assert!((0.85..=1.15).contains(&b), "beta scale {b} out of range");
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Scenario::new(0).validate().is_ok());
        assert!(Scenario::new(0).with_compute_jitter(1.5).validate().is_err());
        assert!(Scenario::new(0).with_stragglers(0.5, 0.5).validate().is_err());
        assert!(Scenario::new(0).with_link_jitter(-0.1, 0.0).validate().is_err());
    }
}
