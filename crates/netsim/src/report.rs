//! Simulation results: per-rank statistics and whole-run reports.

use crate::cluster::RankId;

/// Per-rank accounting gathered during a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStats {
    /// Virtual time at which the rank finished its last operation.
    pub finish_time: f64,
    /// Total time the rank spent blocked waiting for remote progress
    /// (receives, notifications, rendezvous handshakes, barriers).
    pub wait_time: f64,
    /// Total time spent in local computation ([`crate::Op::Compute`],
    /// [`crate::Op::Reduce`], [`crate::Op::Copy`]).
    pub compute_time: f64,
    /// Bytes this rank injected into the network.
    pub bytes_sent: u64,
    /// Bytes delivered into this rank's memory.
    pub bytes_received: u64,
    /// Number of messages this rank injected.
    pub messages_sent: u64,
    /// Number of messages delivered to this rank.
    pub messages_received: u64,
    /// Notification arrivals that became visible at this rank.
    pub notifications_received: u64,
    /// Notification arrivals consumed by this rank's waits (never exceeds
    /// [`RankStats::notifications_received`] at run end).
    pub notifications_consumed: u64,
    /// Duration multiplier the scenario applied to this rank's local
    /// operations (1.0 on homogeneous clusters; > 1.0 is slower, e.g. an
    /// injected straggler).
    pub compute_scale: f64,
}

impl Default for RankStats {
    fn default() -> Self {
        Self {
            finish_time: 0.0,
            wait_time: 0.0,
            compute_time: 0.0,
            bytes_sent: 0,
            bytes_received: 0,
            messages_sent: 0,
            messages_received: 0,
            notifications_received: 0,
            notifications_consumed: 0,
            compute_scale: 1.0,
        }
    }
}

/// Per-link accounting gathered by the flow-level fabric model (see
/// [`crate::fabric::Fabric`]).  Empty for alpha–beta runs and contention-free
/// topologies, which have no shared links to account.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStats {
    /// Human-readable link label (e.g. `"leaf0->core"`).
    pub label: String,
    /// Link capacity in bytes per second.
    pub capacity: f64,
    /// Bytes the link carried during the run.
    pub bytes: f64,
    /// Time during which at least one flow used the link.
    pub busy_time: f64,
    /// Time during which the link was fully allocated — flows crossing it
    /// were rate-limited by this link (the congestion measure).
    pub saturated_time: f64,
}

impl LinkStats {
    /// Mean utilization of the link over `duration` seconds (carried bytes
    /// over the bytes the link could have carried).
    pub fn utilization(&self, duration: f64) -> f64 {
        if duration <= 0.0 || self.capacity <= 0.0 {
            return 0.0;
        }
        self.bytes / (self.capacity * duration)
    }
}

/// Result of simulating one [`crate::Program`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Per-rank statistics, indexed by rank id.
    pub ranks: Vec<RankStats>,
    /// Per-link statistics, indexed like the fabric topology's link list
    /// (empty unless the engine ran with a contended network fabric).
    pub links: Vec<LinkStats>,
    /// Trace of simulation events (empty unless tracing was enabled).
    pub trace: Vec<crate::trace::TraceEvent>,
}

impl RunReport {
    /// Completion time of the whole program: the maximum rank finish time.
    pub fn makespan(&self) -> f64 {
        self.ranks.iter().map(|r| r.finish_time).fold(0.0, f64::max)
    }

    /// Finish time of a specific rank.
    pub fn finish_time(&self, rank: RankId) -> f64 {
        self.ranks[rank].finish_time
    }

    /// Average finish time across ranks.
    pub fn mean_finish_time(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.finish_time).sum::<f64>() / self.ranks.len() as f64
    }

    /// Total time all ranks spent blocked on remote progress.
    pub fn total_wait_time(&self) -> f64 {
        self.ranks.iter().map(|r| r.wait_time).sum()
    }

    /// Average per-rank wait time.
    pub fn mean_wait_time(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.total_wait_time() / self.ranks.len() as f64
    }

    /// Total bytes injected into the network across all ranks.
    pub fn total_bytes_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total number of messages injected across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.ranks.iter().map(|r| r.messages_sent).sum()
    }

    /// Total notification arrivals delivered across all ranks.
    pub fn total_notifications_received(&self) -> u64 {
        self.ranks.iter().map(|r| r.notifications_received).sum()
    }

    /// Total notification arrivals consumed by waits across all ranks.
    /// Conservation invariant: never exceeds
    /// [`RunReport::total_notifications_received`].
    pub fn total_notifications_consumed(&self) -> u64 {
        self.ranks.iter().map(|r| r.notifications_consumed).sum()
    }

    /// Largest per-rank compute scale in the run (identifies the worst
    /// straggler; 1.0 on homogeneous clusters).
    pub fn max_compute_scale(&self) -> f64 {
        self.ranks.iter().map(|r| r.compute_scale).fold(1.0, f64::max)
    }

    // -- fabric link aggregates ---------------------------------------------

    /// Peak mean link utilization across the fabric over the makespan
    /// (0.0 when no fabric link stats were collected).
    pub fn max_link_utilization(&self) -> f64 {
        let d = self.makespan();
        self.links.iter().map(|l| l.utilization(d)).fold(0.0, f64::max)
    }

    /// Total time links spent fully allocated, summed over links — the
    /// run's aggregate congestion (rate-limited time).
    pub fn total_congestion_time(&self) -> f64 {
        self.links.iter().map(|l| l.saturated_time).sum()
    }

    /// Longest single-link saturation time (the worst hot spot).
    pub fn max_link_congestion_time(&self) -> f64 {
        self.links.iter().map(|l| l.saturated_time).fold(0.0, f64::max)
    }

    /// Number of links that were saturated at any point of the run.
    pub fn congested_links(&self) -> usize {
        self.links.iter().filter(|l| l.saturated_time > 0.0).count()
    }

    /// Order-sensitive 64-bit digest of every per-rank and per-link
    /// statistic (floats hashed by exact bit pattern).  Two reports have the
    /// same fingerprint iff their accounting is byte-identical, which is the
    /// property the determinism tests and the CI smoke jobs assert across
    /// scheduler implementations and shard counts.  The trace is excluded:
    /// it is empty unless tracing was explicitly enabled.
    pub fn fingerprint(&self) -> u64 {
        // SplitMix64 absorption: mix(acc ^ word) per field.
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut acc = mix(self.ranks.len() as u64 ^ ((self.links.len() as u64) << 32));
        for r in &self.ranks {
            for f in [r.finish_time, r.wait_time, r.compute_time, r.compute_scale] {
                acc = mix(acc ^ f.to_bits());
            }
            for u in [
                r.bytes_sent,
                r.bytes_received,
                r.messages_sent,
                r.messages_received,
                r.notifications_received,
                r.notifications_consumed,
            ] {
                acc = mix(acc ^ u);
            }
        }
        for l in &self.links {
            for b in l.label.as_bytes() {
                acc = mix(acc ^ u64::from(*b));
            }
            for f in [l.capacity, l.bytes, l.busy_time, l.saturated_time] {
                acc = mix(acc ^ f.to_bits());
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_finish_times(times: &[f64]) -> RunReport {
        RunReport {
            ranks: times.iter().map(|&t| RankStats { finish_time: t, ..RankStats::default() }).collect(),
            links: Vec::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn makespan_is_max_finish_time() {
        let r = report_with_finish_times(&[1.0, 3.0, 2.0]);
        assert_eq!(r.makespan(), 3.0);
        assert_eq!(r.finish_time(1), 3.0);
    }

    #[test]
    fn mean_finish_time_averages() {
        let r = report_with_finish_times(&[1.0, 3.0]);
        assert!((r.mean_finish_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.makespan(), 0.0);
        assert_eq!(r.mean_finish_time(), 0.0);
        assert_eq!(r.mean_wait_time(), 0.0);
    }

    #[test]
    fn byte_and_message_totals_sum_over_ranks() {
        let mut r = report_with_finish_times(&[1.0, 1.0]);
        r.ranks[0].bytes_sent = 10;
        r.ranks[1].bytes_sent = 32;
        r.ranks[0].messages_sent = 2;
        r.ranks[1].messages_sent = 5;
        assert_eq!(r.total_bytes_sent(), 42);
        assert_eq!(r.total_messages(), 7);
    }

    #[test]
    fn default_stats_are_nominal_speed() {
        let s = RankStats::default();
        assert_eq!(s.compute_scale, 1.0);
        assert_eq!(s.notifications_received, 0);
        assert_eq!(s.notifications_consumed, 0);
    }

    #[test]
    fn link_aggregates_summarize_fabric_usage() {
        let mut r = report_with_finish_times(&[2.0]);
        assert_eq!(r.max_link_utilization(), 0.0, "no fabric, no link stats");
        assert_eq!(r.congested_links(), 0);
        r.links = vec![
            LinkStats { label: "n0->sw".into(), capacity: 1e9, bytes: 1e9, busy_time: 1.5, saturated_time: 0.5 },
            LinkStats { label: "sw->n1".into(), capacity: 1e9, bytes: 4e8, busy_time: 0.4, saturated_time: 0.0 },
        ];
        assert!((r.max_link_utilization() - 0.5).abs() < 1e-12, "1e9 bytes over 2 s at 1 GB/s");
        assert!((r.total_congestion_time() - 0.5).abs() < 1e-12);
        assert!((r.max_link_congestion_time() - 0.5).abs() < 1e-12);
        assert_eq!(r.congested_links(), 1);
        assert_eq!(r.links[1].utilization(0.0), 0.0, "degenerate duration is guarded");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let mut a = report_with_finish_times(&[1.0, 2.0]);
        a.links =
            vec![LinkStats { label: "n0->sw".into(), capacity: 1e9, bytes: 1e6, busy_time: 0.1, saturated_time: 0.0 }];
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal reports hash equal");

        // Any single-field perturbation — float or counter, rank or link —
        // must change the digest.
        let mut c = a.clone();
        c.ranks[1].finish_time += 1e-12;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.ranks[0].notifications_consumed = 1;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.links[0].saturated_time = 0.5;
        assert_ne!(a.fingerprint(), e.fingerprint());

        // Swapping rank order changes the digest: it is order-sensitive,
        // which is exactly what cross-shard determinism checks need.
        let mut f = a.clone();
        f.ranks.swap(0, 1);
        assert_ne!(a.fingerprint(), f.fingerprint());

        // The trace is excluded by design.
        let mut g = a.clone();
        g.trace.push(crate::trace::TraceEvent::new(0.0, 0, crate::trace::TraceKind::OpStart, Some(0), "x"));
        assert_eq!(a.fingerprint(), g.fingerprint());
    }

    #[test]
    fn notification_totals_and_scale_aggregate() {
        let mut r = report_with_finish_times(&[1.0, 1.0, 1.0]);
        r.ranks[0].notifications_received = 4;
        r.ranks[1].notifications_received = 1;
        r.ranks[0].notifications_consumed = 3;
        r.ranks[2].compute_scale = 4.5;
        assert_eq!(r.total_notifications_received(), 5);
        assert_eq!(r.total_notifications_consumed(), 3);
        assert_eq!(r.max_compute_scale(), 4.5);
    }
}
