//! Simulation results: per-rank statistics and whole-run reports.

use crate::cluster::RankId;
use crate::critpath::{self, CriticalPath};
use crate::metrics::EngineMetrics;

/// Per-rank accounting gathered during a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStats {
    /// Virtual time at which the rank finished its last operation.
    pub finish_time: f64,
    /// Total time the rank spent blocked waiting for remote progress
    /// (receives, notifications, rendezvous handshakes, barriers).
    pub wait_time: f64,
    /// Total time spent in local computation ([`crate::Op::Compute`],
    /// [`crate::Op::Reduce`], [`crate::Op::Copy`]).
    pub compute_time: f64,
    /// Bytes this rank injected into the network.
    pub bytes_sent: u64,
    /// Bytes delivered into this rank's memory.
    pub bytes_received: u64,
    /// Number of messages this rank injected.
    pub messages_sent: u64,
    /// Number of messages delivered to this rank.
    pub messages_received: u64,
    /// Notification arrivals that became visible at this rank.
    pub notifications_received: u64,
    /// Notification arrivals consumed by this rank's waits (never exceeds
    /// [`RankStats::notifications_received`] at run end).
    pub notifications_consumed: u64,
    /// Duration multiplier the scenario applied to this rank's local
    /// operations (1.0 on homogeneous clusters; > 1.0 is slower, e.g. an
    /// injected straggler).
    pub compute_scale: f64,
}

impl Default for RankStats {
    fn default() -> Self {
        Self {
            finish_time: 0.0,
            wait_time: 0.0,
            compute_time: 0.0,
            bytes_sent: 0,
            bytes_received: 0,
            messages_sent: 0,
            messages_received: 0,
            notifications_received: 0,
            notifications_consumed: 0,
            compute_scale: 1.0,
        }
    }
}

/// Per-link accounting gathered by the flow-level fabric model
/// ([`crate::fabric::Fabric`]) or the per-packet backend
/// ([`crate::packet::PacketFabric`]).  Empty for alpha–beta runs and
/// contention-free topologies, which have no shared links to account.  The
/// packet counters ([`LinkStats::packets`] onward) stay zero for flow-level
/// runs, which do not model individual packets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// Human-readable link label (e.g. `"leaf0->core"`).
    pub label: String,
    /// Link capacity in bytes per second.
    pub capacity: f64,
    /// Bytes the link carried during the run.
    pub bytes: f64,
    /// Time during which at least one flow used the link.
    pub busy_time: f64,
    /// Time during which the link was fully allocated — flows crossing it
    /// were rate-limited by this link (the congestion measure).
    pub saturated_time: f64,
    /// Coalesced `[start, end)` intervals during which at least one flow
    /// used the link, in increasing time order.  Together with
    /// [`LinkStats::busy_time`] (their total length) this lets `xtask
    /// trace-stats` print a link-utilization timeline without re-running
    /// the fabric.  Adjacent intervals are merged at collection time, so
    /// the vector length is bounded by the number of idle gaps, not by the
    /// number of solver re-resolutions.
    pub busy_intervals: Vec<(f64, f64)>,
    /// Data packets fully serialized onto the link (packet backend only;
    /// retransmits included).
    pub packets: u64,
    /// Packets dropped at this link's queue or, on final hops, by seeded
    /// loss (packet backend only).
    pub drops: u64,
    /// Packets ECN-marked while enqueuing here (packet backend only).
    pub ecn_marks: u64,
    /// PFC pause assertions this link received (packet backend only).
    pub pfc_pauses: u64,
    /// Total time this link spent PFC-paused (packet backend only).
    pub pause_time: f64,
}

impl LinkStats {
    /// Mean utilization of the link over `duration` seconds (carried bytes
    /// over the bytes the link could have carried).
    pub fn utilization(&self, duration: f64) -> f64 {
        if duration <= 0.0 || self.capacity <= 0.0 {
            return 0.0;
        }
        self.bytes / (self.capacity * duration)
    }
}

/// How much per-rank detail a [`RunReport`] retains after a run.
///
/// At a million ranks the per-rank [`RankStats`] vector is ~100 MB per
/// report; figure binaries that only print aggregates select
/// [`ReportDetail::Summary`] (or [`ReportDetail::Sampled`]) via
/// [`crate::Engine::with_report_detail`] and the engine folds the aggregates
/// — including the full determinism fingerprint — *before* dropping the
/// per-rank rows, so summary reports stay byte-comparable to full ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportDetail {
    /// Keep every per-rank row (the default; reports behave exactly as they
    /// always have, and no summary is attached).
    #[default]
    Full,
    /// Fold all aggregates into a [`ReportSummary`] and drop the per-rank
    /// rows.  Aggregate accessors and [`RunReport::fingerprint`] keep
    /// answering from the summary; per-rank accessors see an empty vector.
    Summary,
    /// Like [`ReportDetail::Summary`], but additionally retain every k-th
    /// rank's row (rank 0, k, 2k, …) for spot inspection.  `Sampled(1)`
    /// keeps everything and still attaches the summary.
    Sampled(usize),
}

/// Whole-run aggregates folded from the per-rank rows before they are
/// dropped (see [`ReportDetail`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSummary {
    /// Ranks that ran (the length the `ranks` vector had).
    pub num_ranks: usize,
    /// Maximum rank finish time.
    pub makespan: f64,
    /// Sum of per-rank finish times.
    pub sum_finish_time: f64,
    /// Sum of per-rank wait times.
    pub total_wait_time: f64,
    /// Sum of per-rank compute times.
    pub total_compute_time: f64,
    /// Total bytes injected into the network.
    pub total_bytes_sent: u64,
    /// Total messages injected.
    pub total_messages: u64,
    /// Total notification arrivals delivered.
    pub total_notifications_received: u64,
    /// Total notification arrivals consumed by waits.
    pub total_notifications_consumed: u64,
    /// Largest per-rank compute scale.
    pub max_compute_scale: f64,
    /// The **full** report fingerprint, computed over every per-rank row
    /// before any were dropped — identical to what
    /// [`RunReport::fingerprint`] returns on the [`ReportDetail::Full`]
    /// report of the same run.
    pub fingerprint: u64,
}

/// Result of simulating one [`crate::Program`].
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Per-rank statistics, indexed by rank id ([`ReportDetail::Full`]),
    /// every k-th rank ([`ReportDetail::Sampled`]) or empty
    /// ([`ReportDetail::Summary`]).
    pub ranks: Vec<RankStats>,
    /// Per-link statistics, indexed like the fabric topology's link list
    /// (empty unless the engine ran with a contended network fabric).
    pub links: Vec<LinkStats>,
    /// Trace of simulation events (empty unless tracing was enabled).
    pub trace: Vec<crate::trace::TraceEvent>,
    /// Folded aggregates (`None` under [`ReportDetail::Full`]).
    pub summary: Option<ReportSummary>,
    /// Engine work counters for this run (see [`EngineMetrics`]).
    pub metrics: EngineMetrics,
}

/// Report equality deliberately ignores [`RunReport::metrics`]: the
/// counters describe how much work the *engine* did (queue maintenance,
/// solver passes), which legitimately differs between the calendar queue
/// and the binary heap — or between shard counts — while the simulation
/// outputs they produce are bit-identical.  The determinism tests compare
/// whole reports across those configurations.
impl PartialEq for RunReport {
    fn eq(&self, other: &Self) -> bool {
        self.ranks == other.ranks
            && self.links == other.links
            && self.trace == other.trace
            && self.summary == other.summary
    }
}

impl RunReport {
    /// Completion time of the whole program: the maximum rank finish time.
    pub fn makespan(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.makespan;
        }
        self.ranks.iter().map(|r| r.finish_time).fold(0.0, f64::max)
    }

    /// Finish time of a specific rank.  Under [`ReportDetail::Summary`] the
    /// per-rank rows are gone and this panics; use the aggregates instead.
    pub fn finish_time(&self, rank: RankId) -> f64 {
        self.ranks[rank].finish_time
    }

    /// Average finish time across ranks.
    pub fn mean_finish_time(&self) -> f64 {
        if let Some(s) = &self.summary {
            if s.num_ranks == 0 {
                return 0.0;
            }
            return s.sum_finish_time / s.num_ranks as f64;
        }
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.finish_time).sum::<f64>() / self.ranks.len() as f64
    }

    /// Total time all ranks spent blocked on remote progress.
    pub fn total_wait_time(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.total_wait_time;
        }
        self.ranks.iter().map(|r| r.wait_time).sum()
    }

    /// Average per-rank wait time.
    pub fn mean_wait_time(&self) -> f64 {
        let n = self.summary.as_ref().map_or(self.ranks.len(), |s| s.num_ranks);
        if n == 0 {
            return 0.0;
        }
        self.total_wait_time() / n as f64
    }

    /// Total time all ranks spent in local computation.
    pub fn total_compute_time(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.total_compute_time;
        }
        self.ranks.iter().map(|r| r.compute_time).sum()
    }

    /// Total bytes injected into the network across all ranks.
    pub fn total_bytes_sent(&self) -> u64 {
        if let Some(s) = &self.summary {
            return s.total_bytes_sent;
        }
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Total number of messages injected across all ranks.
    pub fn total_messages(&self) -> u64 {
        if let Some(s) = &self.summary {
            return s.total_messages;
        }
        self.ranks.iter().map(|r| r.messages_sent).sum()
    }

    /// Total notification arrivals delivered across all ranks.
    pub fn total_notifications_received(&self) -> u64 {
        if let Some(s) = &self.summary {
            return s.total_notifications_received;
        }
        self.ranks.iter().map(|r| r.notifications_received).sum()
    }

    /// Total notification arrivals consumed by waits across all ranks.
    /// Conservation invariant: never exceeds
    /// [`RunReport::total_notifications_received`].
    pub fn total_notifications_consumed(&self) -> u64 {
        if let Some(s) = &self.summary {
            return s.total_notifications_consumed;
        }
        self.ranks.iter().map(|r| r.notifications_consumed).sum()
    }

    /// Largest per-rank compute scale in the run (identifies the worst
    /// straggler; 1.0 on homogeneous clusters).
    pub fn max_compute_scale(&self) -> f64 {
        if let Some(s) = &self.summary {
            return s.max_compute_scale;
        }
        self.ranks.iter().map(|r| r.compute_scale).fold(1.0, f64::max)
    }

    /// Apply a [`ReportDetail`] policy: fold the summary (including the full
    /// fingerprint) and drop or thin the per-rank rows.  Called by the
    /// engine after the report is fully assembled; [`ReportDetail::Full`] is
    /// a no-op, so default runs are untouched.
    pub fn finalize(&mut self, detail: ReportDetail) {
        match detail {
            ReportDetail::Full => {}
            ReportDetail::Summary => {
                self.fold_summary();
                self.ranks = Vec::new();
            }
            ReportDetail::Sampled(k) => {
                self.fold_summary();
                let k = k.max(1);
                let mut i = 0usize;
                self.ranks.retain(|_| {
                    let keep = i.is_multiple_of(k);
                    i += 1;
                    keep
                });
                self.ranks.shrink_to_fit();
            }
        }
    }

    /// Fold the aggregates of the (still complete) per-rank rows into
    /// [`RunReport::summary`].
    fn fold_summary(&mut self) {
        let fingerprint = self.fingerprint();
        self.summary = Some(ReportSummary {
            num_ranks: self.ranks.len(),
            makespan: self.ranks.iter().map(|r| r.finish_time).fold(0.0, f64::max),
            sum_finish_time: self.ranks.iter().map(|r| r.finish_time).sum(),
            total_wait_time: self.ranks.iter().map(|r| r.wait_time).sum(),
            total_compute_time: self.ranks.iter().map(|r| r.compute_time).sum(),
            total_bytes_sent: self.ranks.iter().map(|r| r.bytes_sent).sum(),
            total_messages: self.ranks.iter().map(|r| r.messages_sent).sum(),
            total_notifications_received: self.ranks.iter().map(|r| r.notifications_received).sum(),
            total_notifications_consumed: self.ranks.iter().map(|r| r.notifications_consumed).sum(),
            max_compute_scale: self.ranks.iter().map(|r| r.compute_scale).fold(1.0, f64::max),
            fingerprint,
        });
    }

    /// Post-run critical-path analysis: walk intra-rank op precedence plus
    /// message/notification supply edges backward from the last finisher
    /// and return the makespan-dominating chain with per-category time
    /// attribution (see [`CriticalPath`]).  Requires a traced run
    /// ([`crate::Engine::with_trace`]); returns `None` when the trace is
    /// empty.
    pub fn critical_path(&self) -> Option<CriticalPath> {
        critpath::analyze(self)
    }

    // -- fabric link aggregates ---------------------------------------------

    /// Peak mean link utilization across the fabric over the makespan
    /// (0.0 when no fabric link stats were collected).
    pub fn max_link_utilization(&self) -> f64 {
        let d = self.makespan();
        self.links.iter().map(|l| l.utilization(d)).fold(0.0, f64::max)
    }

    /// Total time links spent fully allocated, summed over links — the
    /// run's aggregate congestion (rate-limited time).
    pub fn total_congestion_time(&self) -> f64 {
        self.links.iter().map(|l| l.saturated_time).sum()
    }

    /// Longest single-link saturation time (the worst hot spot).
    pub fn max_link_congestion_time(&self) -> f64 {
        self.links.iter().map(|l| l.saturated_time).fold(0.0, f64::max)
    }

    /// Number of links that were saturated at any point of the run.
    pub fn congested_links(&self) -> usize {
        self.links.iter().filter(|l| l.saturated_time > 0.0).count()
    }

    /// Order-sensitive 64-bit digest of every per-rank and per-link
    /// statistic (floats hashed by exact bit pattern).  Two reports have the
    /// same fingerprint iff their accounting is byte-identical, which is the
    /// property the determinism tests and the CI smoke jobs assert across
    /// scheduler implementations and shard counts.  The trace is excluded:
    /// it is empty unless tracing was explicitly enabled.
    ///
    /// When a [`ReportSummary`] is attached, its stored fingerprint — folded
    /// over the complete per-rank rows before any were dropped — is returned,
    /// so `Summary`/`Sampled` reports fingerprint identically to the `Full`
    /// report of the same run.
    pub fn fingerprint(&self) -> u64 {
        if let Some(s) = &self.summary {
            return s.fingerprint;
        }
        // SplitMix64 absorption: mix(acc ^ word) per field.
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut acc = mix(self.ranks.len() as u64 ^ ((self.links.len() as u64) << 32));
        for r in &self.ranks {
            for f in [r.finish_time, r.wait_time, r.compute_time, r.compute_scale] {
                acc = mix(acc ^ f.to_bits());
            }
            for u in [
                r.bytes_sent,
                r.bytes_received,
                r.messages_sent,
                r.messages_received,
                r.notifications_received,
                r.notifications_consumed,
            ] {
                acc = mix(acc ^ u);
            }
        }
        for l in &self.links {
            for b in l.label.as_bytes() {
                acc = mix(acc ^ u64::from(*b));
            }
            for f in [l.capacity, l.bytes, l.busy_time, l.saturated_time, l.pause_time] {
                acc = mix(acc ^ f.to_bits());
            }
            for u in [l.packets, l.drops, l.ecn_marks, l.pfc_pauses] {
                acc = mix(acc ^ u);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with_finish_times(times: &[f64]) -> RunReport {
        RunReport {
            ranks: times.iter().map(|&t| RankStats { finish_time: t, ..RankStats::default() }).collect(),
            ..RunReport::default()
        }
    }

    fn link(label: &str, capacity: f64, bytes: f64, busy_time: f64, saturated_time: f64) -> LinkStats {
        LinkStats { label: label.into(), capacity, bytes, busy_time, saturated_time, ..LinkStats::default() }
    }

    #[test]
    fn makespan_is_max_finish_time() {
        let r = report_with_finish_times(&[1.0, 3.0, 2.0]);
        assert_eq!(r.makespan(), 3.0);
        assert_eq!(r.finish_time(1), 3.0);
    }

    #[test]
    fn mean_finish_time_averages() {
        let r = report_with_finish_times(&[1.0, 3.0]);
        assert!((r.mean_finish_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::default();
        assert_eq!(r.makespan(), 0.0);
        assert_eq!(r.mean_finish_time(), 0.0);
        assert_eq!(r.mean_wait_time(), 0.0);
    }

    #[test]
    fn byte_and_message_totals_sum_over_ranks() {
        let mut r = report_with_finish_times(&[1.0, 1.0]);
        r.ranks[0].bytes_sent = 10;
        r.ranks[1].bytes_sent = 32;
        r.ranks[0].messages_sent = 2;
        r.ranks[1].messages_sent = 5;
        assert_eq!(r.total_bytes_sent(), 42);
        assert_eq!(r.total_messages(), 7);
    }

    #[test]
    fn default_stats_are_nominal_speed() {
        let s = RankStats::default();
        assert_eq!(s.compute_scale, 1.0);
        assert_eq!(s.notifications_received, 0);
        assert_eq!(s.notifications_consumed, 0);
    }

    #[test]
    fn link_aggregates_summarize_fabric_usage() {
        let mut r = report_with_finish_times(&[2.0]);
        assert_eq!(r.max_link_utilization(), 0.0, "no fabric, no link stats");
        assert_eq!(r.congested_links(), 0);
        r.links = vec![link("n0->sw", 1e9, 1e9, 1.5, 0.5), link("sw->n1", 1e9, 4e8, 0.4, 0.0)];
        assert!((r.max_link_utilization() - 0.5).abs() < 1e-12, "1e9 bytes over 2 s at 1 GB/s");
        assert!((r.total_congestion_time() - 0.5).abs() < 1e-12);
        assert!((r.max_link_congestion_time() - 0.5).abs() < 1e-12);
        assert_eq!(r.congested_links(), 1);
        assert_eq!(r.links[1].utilization(0.0), 0.0, "degenerate duration is guarded");
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let mut a = report_with_finish_times(&[1.0, 2.0]);
        a.links = vec![link("n0->sw", 1e9, 1e6, 0.1, 0.0)];
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal reports hash equal");

        // Any single-field perturbation — float or counter, rank or link —
        // must change the digest.
        let mut c = a.clone();
        c.ranks[1].finish_time += 1e-12;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.ranks[0].notifications_consumed = 1;
        assert_ne!(a.fingerprint(), d.fingerprint());
        let mut e = a.clone();
        e.links[0].saturated_time = 0.5;
        assert_ne!(a.fingerprint(), e.fingerprint());

        // Swapping rank order changes the digest: it is order-sensitive,
        // which is exactly what cross-shard determinism checks need.
        let mut f = a.clone();
        f.ranks.swap(0, 1);
        assert_ne!(a.fingerprint(), f.fingerprint());

        // The trace and the engine metrics are excluded by design.
        let mut g = a.clone();
        g.trace.push(crate::trace::TraceEvent::new(
            0.0,
            0,
            crate::trace::TraceKind::OpStart,
            Some(0),
            0,
            crate::trace::TraceDetail::None,
        ));
        g.metrics.events_scheduled = 999;
        assert_eq!(a.fingerprint(), g.fingerprint());

        // Metrics do not participate in report equality either: the heap
        // and the calendar queue do different queue work for the same run.
        let mut h = a.clone();
        h.metrics.calendar_bucket_sorts = 123;
        assert_eq!(a, h);
    }

    #[test]
    fn summary_finalize_preserves_aggregates_and_fingerprint() {
        let mut full = report_with_finish_times(&[1.0, 3.0, 2.0]);
        full.ranks[0].wait_time = 0.5;
        full.ranks[1].compute_time = 0.25;
        full.ranks[1].bytes_sent = 100;
        full.ranks[2].messages_sent = 4;
        full.ranks[0].notifications_received = 7;
        full.ranks[0].notifications_consumed = 6;
        full.ranks[2].compute_scale = 2.5;

        let mut summary = full.clone();
        summary.finalize(ReportDetail::Summary);
        assert!(summary.ranks.is_empty(), "per-rank rows dropped");
        assert_eq!(summary.makespan(), full.makespan());
        assert_eq!(summary.mean_finish_time(), full.mean_finish_time());
        assert_eq!(summary.total_wait_time(), full.total_wait_time());
        assert_eq!(summary.mean_wait_time(), full.mean_wait_time());
        assert_eq!(summary.total_compute_time(), full.total_compute_time());
        assert_eq!(summary.total_bytes_sent(), full.total_bytes_sent());
        assert_eq!(summary.total_messages(), full.total_messages());
        assert_eq!(summary.total_notifications_received(), full.total_notifications_received());
        assert_eq!(summary.total_notifications_consumed(), full.total_notifications_consumed());
        assert_eq!(summary.max_compute_scale(), full.max_compute_scale());
        assert_eq!(summary.fingerprint(), full.fingerprint(), "summary keeps the full fingerprint");

        // Full is a no-op: the report is untouched and has no summary.
        let mut untouched = full.clone();
        untouched.finalize(ReportDetail::Full);
        assert_eq!(untouched, full);
        assert!(untouched.summary.is_none());
    }

    #[test]
    fn sampled_finalize_keeps_every_kth_rank() {
        let mut r = report_with_finish_times(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let full_fp = r.fingerprint();
        r.finalize(ReportDetail::Sampled(2));
        assert_eq!(r.ranks.len(), 3, "ranks 0, 2, 4 kept");
        assert_eq!(r.ranks[1].finish_time, 3.0);
        assert_eq!(r.fingerprint(), full_fp);
        assert_eq!(r.makespan(), 5.0, "aggregates answer from the summary");

        // Sampled(0) is clamped to keep-everything rather than panicking.
        let mut z = report_with_finish_times(&[1.0, 2.0]);
        z.finalize(ReportDetail::Sampled(0));
        assert_eq!(z.ranks.len(), 2);
    }

    #[test]
    fn empty_summary_report_is_zero() {
        let mut r = RunReport::default();
        r.finalize(ReportDetail::Summary);
        assert_eq!(r.makespan(), 0.0);
        assert_eq!(r.mean_finish_time(), 0.0);
        assert_eq!(r.mean_wait_time(), 0.0);
    }

    #[test]
    fn notification_totals_and_scale_aggregate() {
        let mut r = report_with_finish_times(&[1.0, 1.0, 1.0]);
        r.ranks[0].notifications_received = 4;
        r.ranks[1].notifications_received = 1;
        r.ranks[0].notifications_consumed = 3;
        r.ranks[2].compute_scale = 4.5;
        assert_eq!(r.total_notifications_received(), 5);
        assert_eq!(r.total_notifications_consumed(), 3);
        assert_eq!(r.max_compute_scale(), 4.5);
    }
}
