//! Static validation of programs before simulation.
//!
//! Validation catches schedule-generator bugs early (rank ids out of range,
//! self-messages, mismatched send/receive counts) with a clear error instead
//! of a virtual-time deadlock.

use std::collections::HashMap;

use crate::cluster::RankId;
use crate::compiled::CompiledProgram;
use crate::program::{Op, Program, Tag};
use crate::source::ProgramSource;

/// Per-channel send/receive counts accumulated across ranks, keyed by
/// `(src, dst, tag)`.
pub(crate) type ChannelCounts = HashMap<(RankId, RankId, Tag), usize>;

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The program defines a different number of ranks than the cluster has.
    RankCountMismatch {
        /// Ranks in the program.
        program: usize,
        /// Ranks in the cluster.
        cluster: usize,
    },
    /// An operation references a rank outside the program.
    RankOutOfRange {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
        /// The referenced rank.
        target: RankId,
    },
    /// An operation sends a message to its own rank.
    SelfMessage {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A `WaitNotifyAny` asks for more notifications than it lists.
    BadNotifyCount {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A `WaitNotify`/`WaitNotifyAny` lists the same notification id twice.
    /// A duplicated id would make the engine count one arrival as two and
    /// decrement a zero counter on consumption — always a schedule-generator
    /// bug.
    DuplicateWaitId {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
        /// The duplicated notification id.
        id: u32,
    },
    /// A `PutNotify` carries no payload.  Payload-free synchronization must
    /// use `Notify`; a zero-byte put is almost always a schedule-generator
    /// bug (e.g. an empty chunk of a payload smaller than the rank count).
    ZeroBytePut {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A compute duration is negative or not finite.
    BadComputeDuration {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A compiled program's arena is structurally inconsistent: a rank entry
    /// or wait-id slice reaches outside its storage, or a stored target code
    /// decodes to an invalid rank.  Compiled programs are valid by
    /// construction, so this only fires for programs of unknown provenance.
    CorruptArena {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The number of sends and receives on a channel differ.
    UnmatchedChannel {
        /// Sending rank.
        src: RankId,
        /// Receiving rank.
        dst: RankId,
        /// Message tag.
        tag: Tag,
        /// Number of sends on the channel.
        sends: usize,
        /// Number of receives on the channel.
        recvs: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::RankCountMismatch { program, cluster } => {
                write!(f, "program has {program} ranks but the cluster has {cluster}")
            }
            ValidationError::RankOutOfRange { rank, op_index, target } => {
                write!(f, "rank {rank} op {op_index} references out-of-range rank {target}")
            }
            ValidationError::SelfMessage { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} sends a message to itself")
            }
            ValidationError::BadNotifyCount { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} waits for more notifications than it lists")
            }
            ValidationError::DuplicateWaitId { rank, op_index, id } => {
                write!(f, "rank {rank} op {op_index} lists notification id {id} more than once in a wait")
            }
            ValidationError::ZeroBytePut { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} issues a zero-byte put; use a payload-free notify instead")
            }
            ValidationError::BadComputeDuration { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} has a negative or non-finite compute duration")
            }
            ValidationError::CorruptArena { detail } => {
                write!(f, "compiled program arena is corrupt: {detail}")
            }
            ValidationError::UnmatchedChannel { src, dst, tag, sends, recvs } => {
                write!(f, "channel {src}->{dst} tag {tag} has {sends} sends but {recvs} receives")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Reject wait lists containing the same notification id twice.
///
/// Wait lists are almost always tiny (one or two ids per op, at most the
/// fan-in of a tree), and validation runs on every `Engine::run` — so small
/// lists use an allocation-free quadratic scan and only genuinely large
/// lists fall back to a hash set.
fn check_distinct_wait_ids(ids: &[u32], rank: RankId, op_index: usize) -> Result<(), ValidationError> {
    if ids.len() <= 16 {
        for (i, &id) in ids.iter().enumerate() {
            if ids[..i].contains(&id) {
                return Err(ValidationError::DuplicateWaitId { rank, op_index, id });
            }
        }
        return Ok(());
    }
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    for &id in ids {
        if !seen.insert(id) {
            return Err(ValidationError::DuplicateWaitId { rank, op_index, id });
        }
    }
    Ok(())
}

/// Per-op structural checks for one rank, accumulating its two-sided channel
/// traffic into `sends`/`recvs` for the whole-program channel check.  Shared
/// by [`validate`], [`validate_source`] and the streaming compiler, so every
/// entry path rejects a broken program with the same error at the same op.
pub(crate) fn check_rank_ops(
    rank: RankId,
    ops: &[Op],
    n: usize,
    sends: &mut ChannelCounts,
    recvs: &mut ChannelCounts,
) -> Result<(), ValidationError> {
    for (op_index, op) in ops.iter().enumerate() {
        let check_target = |target: RankId| -> Result<(), ValidationError> {
            if target >= n {
                Err(ValidationError::RankOutOfRange { rank, op_index, target })
            } else if target == rank {
                Err(ValidationError::SelfMessage { rank, op_index })
            } else {
                Ok(())
            }
        };
        match op {
            Op::PutNotify { dst, bytes, .. } => {
                check_target(*dst)?;
                if *bytes == 0 {
                    return Err(ValidationError::ZeroBytePut { rank, op_index });
                }
            }
            Op::Notify { dst, .. } => check_target(*dst)?,
            Op::Send { dst, tag, .. } | Op::Isend { dst, tag, .. } => {
                check_target(*dst)?;
                *sends.entry((rank, *dst, *tag)).or_default() += 1;
            }
            Op::Recv { src, tag, .. } => {
                check_target(*src)?;
                *recvs.entry((*src, rank, *tag)).or_default() += 1;
            }
            Op::WaitNotifyAny { ids, count } => {
                if *count == 0 || *count > ids.len() {
                    return Err(ValidationError::BadNotifyCount { rank, op_index });
                }
                check_distinct_wait_ids(ids, rank, op_index)?;
            }
            Op::WaitNotify { ids } => check_distinct_wait_ids(ids, rank, op_index)?,
            Op::Compute { seconds } if !seconds.is_finite() || *seconds < 0.0 => {
                return Err(ValidationError::BadComputeDuration { rank, op_index });
            }
            _ => {}
        }
    }
    Ok(())
}

/// Per-channel send and receive counts must agree, otherwise the simulation
/// deadlocks (or leaves unmatched traffic behind).
pub(crate) fn check_channels(sends: &ChannelCounts, recvs: &ChannelCounts) -> Result<(), ValidationError> {
    for (&(src, dst, tag), &s) in sends {
        let r = recvs.get(&(src, dst, tag)).copied().unwrap_or(0);
        if r != s {
            return Err(ValidationError::UnmatchedChannel { src, dst, tag, sends: s, recvs: r });
        }
    }
    for (&(src, dst, tag), &r) in recvs {
        let s = sends.get(&(src, dst, tag)).copied().unwrap_or(0);
        if r != s {
            return Err(ValidationError::UnmatchedChannel { src, dst, tag, sends: s, recvs: r });
        }
    }
    Ok(())
}

/// Validate `program` against a cluster with `cluster_ranks` ranks.
pub fn validate(program: &Program, cluster_ranks: usize) -> Result<(), ValidationError> {
    let n = program.num_ranks();
    if n != cluster_ranks {
        return Err(ValidationError::RankCountMismatch { program: n, cluster: cluster_ranks });
    }
    let mut sends = ChannelCounts::new();
    let mut recvs = ChannelCounts::new();
    for (rank, rp) in program.ranks.iter().enumerate() {
        check_rank_ops(rank, &rp.ops, n, &mut sends, &mut recvs)?;
    }
    check_channels(&sends, &recvs)
}

/// Validate a symbolic [`ProgramSource`] streamingly: one rank's ops are
/// materialized into a reused scratch buffer at a time, so a p = 2^20
/// generator validates in O(ops) memory — the full program never exists.
/// Applies exactly the checks (and yields exactly the errors) of [`validate`]
/// on the materialized equivalent.
pub fn validate_source<S: ProgramSource>(source: &S, cluster_ranks: usize) -> Result<(), ValidationError> {
    let n = source.num_ranks();
    if n != cluster_ranks {
        return Err(ValidationError::RankCountMismatch { program: n, cluster: cluster_ranks });
    }
    let mut sends = ChannelCounts::new();
    let mut recvs = ChannelCounts::new();
    let mut scratch = Vec::new();
    for rank in 0..n {
        scratch.clear();
        source.rank_ops(rank, &mut scratch);
        check_rank_ops(rank, &scratch, n, &mut sends, &mut recvs)?;
    }
    check_channels(&sends, &recvs)
}

/// Validate an already-compiled program against a cluster with
/// `cluster_ranks` ranks.
///
/// Compilation re-runs the full per-op validation, so a [`CompiledProgram`]
/// is structurally valid by construction; this check is the cheap O(arena)
/// defense applied before execution: rank count, rank-entry and wait-id
/// slice bounds, and target-code ranges (rejecting out-of-bounds arena slice
/// ranges with [`ValidationError::CorruptArena`]).  It never materializes or
/// re-walks per-rank op streams except for the rank-dependent xor-mode
/// target check at non-power-of-two rank counts.
pub fn validate_compiled(program: &CompiledProgram, cluster_ranks: usize) -> Result<(), ValidationError> {
    let n = program.num_ranks();
    if n != cluster_ranks {
        return Err(ValidationError::RankCountMismatch { program: n, cluster: cluster_ranks });
    }
    program.check_bounds()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 100, 0);
        b.recv(1, 0, 100, 0);
        b.put_notify(0, 1, 8, 1);
        b.wait_notify(1, &[1]);
        assert!(validate(&b.build(), 2).is_ok());
    }

    #[test]
    fn rank_count_mismatch_detected() {
        let p = Program::empty(3);
        assert!(matches!(validate(&p, 4), Err(ValidationError::RankCountMismatch { .. })));
    }

    #[test]
    fn out_of_range_target_detected() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 5, 8, 0);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::RankOutOfRange { target: 5, .. })));
    }

    #[test]
    fn self_message_detected() {
        let mut b = ProgramBuilder::new(2);
        b.send(1, 1, 8, 0);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::SelfMessage { rank: 1, .. })));
    }

    #[test]
    fn unmatched_channel_detected() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 100, 0);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::UnmatchedChannel { .. })));
    }

    #[test]
    fn bad_notify_count_detected() {
        let mut b = ProgramBuilder::new(2);
        b.wait_notify_any(0, &[1, 2], 3);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::BadNotifyCount { .. })));
    }

    #[test]
    fn duplicate_wait_ids_detected() {
        // `WaitNotify` with a repeated id: one arrival would be counted twice
        // and the second consumption would underflow a zero counter.
        let mut b = ProgramBuilder::new(2);
        b.wait_notify(0, &[4, 4]);
        assert!(matches!(
            validate(&b.build(), 2),
            Err(ValidationError::DuplicateWaitId { rank: 0, op_index: 0, id: 4 })
        ));
        // Same for `WaitNotifyAny`.
        let mut b = ProgramBuilder::new(2);
        b.wait_notify_any(1, &[7, 2, 7], 1);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::DuplicateWaitId { rank: 1, id: 7, .. })));
        // Distinct ids stay valid.
        let mut ok = ProgramBuilder::new(2);
        ok.notify(0, 1, 2);
        ok.notify(0, 1, 7);
        ok.wait_notify_any(1, &[7, 2], 2);
        assert!(validate(&ok.build(), 2).is_ok());
    }

    #[test]
    fn zero_byte_put_detected() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 0, 3);
        b.wait_notify(1, &[3]);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::ZeroBytePut { rank: 0, op_index: 0 })));
        // The payload-free form of the same synchronization is fine.
        let mut ok = ProgramBuilder::new(2);
        ok.notify(0, 1, 3);
        ok.wait_notify(1, &[3]);
        assert!(validate(&ok.build(), 2).is_ok());
    }

    #[test]
    fn negative_compute_detected() {
        let mut b = ProgramBuilder::new(1);
        b.compute(0, -1.0);
        assert!(matches!(validate(&b.build(), 1), Err(ValidationError::BadComputeDuration { .. })));
    }

    #[test]
    fn errors_format_human_readably() {
        let e = ValidationError::UnmatchedChannel { src: 0, dst: 1, tag: 2, sends: 3, recvs: 1 };
        let s = e.to_string();
        assert!(s.contains("0->1"));
        assert!(s.contains("3 sends"));
        let e = ValidationError::CorruptArena { detail: "bad slice".into() };
        assert!(e.to_string().contains("bad slice"));
    }

    #[test]
    fn validate_source_agrees_with_validate() {
        // Valid program: both paths accept.
        let mut ok = ProgramBuilder::new(3);
        ok.send(0, 1, 100, 0);
        ok.recv(1, 0, 100, 0);
        ok.put_notify(2, 0, 8, 1);
        ok.wait_notify(0, &[1]);
        let ok = ok.build();
        assert!(validate(&ok, 3).is_ok());
        assert!(validate_source(&ok, 3).is_ok());
        // Broken program: same error from both paths.
        let mut bad = ProgramBuilder::new(2);
        bad.wait_notify(0, &[4, 4]);
        let bad = bad.build();
        assert_eq!(validate(&bad, 2).unwrap_err(), validate_source(&bad, 2).unwrap_err());
        // Rank-count mismatch is caught before any rank materializes.
        assert!(matches!(validate_source(&ok, 5), Err(ValidationError::RankCountMismatch { .. })));
    }

    #[test]
    fn validate_compiled_checks_rank_count_and_bounds() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 8, 0);
        b.wait_notify(1, &[0]);
        let c = b.build().compile().unwrap();
        assert!(validate_compiled(&c, 2).is_ok());
        assert!(matches!(validate_compiled(&c, 3), Err(ValidationError::RankCountMismatch { .. })));
    }
}
