//! Static validation of programs before simulation.
//!
//! Validation catches schedule-generator bugs early (rank ids out of range,
//! self-messages, mismatched send/receive counts) with a clear error instead
//! of a virtual-time deadlock.

use std::collections::HashMap;

use crate::cluster::RankId;
use crate::program::{Op, Program, Tag};

/// Why a program was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The program defines a different number of ranks than the cluster has.
    RankCountMismatch {
        /// Ranks in the program.
        program: usize,
        /// Ranks in the cluster.
        cluster: usize,
    },
    /// An operation references a rank outside the program.
    RankOutOfRange {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
        /// The referenced rank.
        target: RankId,
    },
    /// An operation sends a message to its own rank.
    SelfMessage {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A `WaitNotifyAny` asks for more notifications than it lists.
    BadNotifyCount {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A `WaitNotify`/`WaitNotifyAny` lists the same notification id twice.
    /// A duplicated id would make the engine count one arrival as two and
    /// decrement a zero counter on consumption — always a schedule-generator
    /// bug.
    DuplicateWaitId {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
        /// The duplicated notification id.
        id: u32,
    },
    /// A `PutNotify` carries no payload.  Payload-free synchronization must
    /// use `Notify`; a zero-byte put is almost always a schedule-generator
    /// bug (e.g. an empty chunk of a payload smaller than the rank count).
    ZeroBytePut {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// A compute duration is negative or not finite.
    BadComputeDuration {
        /// Rank issuing the operation.
        rank: RankId,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// The number of sends and receives on a channel differ.
    UnmatchedChannel {
        /// Sending rank.
        src: RankId,
        /// Receiving rank.
        dst: RankId,
        /// Message tag.
        tag: Tag,
        /// Number of sends on the channel.
        sends: usize,
        /// Number of receives on the channel.
        recvs: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::RankCountMismatch { program, cluster } => {
                write!(f, "program has {program} ranks but the cluster has {cluster}")
            }
            ValidationError::RankOutOfRange { rank, op_index, target } => {
                write!(f, "rank {rank} op {op_index} references out-of-range rank {target}")
            }
            ValidationError::SelfMessage { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} sends a message to itself")
            }
            ValidationError::BadNotifyCount { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} waits for more notifications than it lists")
            }
            ValidationError::DuplicateWaitId { rank, op_index, id } => {
                write!(f, "rank {rank} op {op_index} lists notification id {id} more than once in a wait")
            }
            ValidationError::ZeroBytePut { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} issues a zero-byte put; use a payload-free notify instead")
            }
            ValidationError::BadComputeDuration { rank, op_index } => {
                write!(f, "rank {rank} op {op_index} has a negative or non-finite compute duration")
            }
            ValidationError::UnmatchedChannel { src, dst, tag, sends, recvs } => {
                write!(f, "channel {src}->{dst} tag {tag} has {sends} sends but {recvs} receives")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Reject wait lists containing the same notification id twice.
///
/// Wait lists are almost always tiny (one or two ids per op, at most the
/// fan-in of a tree), and validation runs on every `Engine::run` — so small
/// lists use an allocation-free quadratic scan and only genuinely large
/// lists fall back to a hash set.
fn check_distinct_wait_ids(ids: &[u32], rank: RankId, op_index: usize) -> Result<(), ValidationError> {
    if ids.len() <= 16 {
        for (i, &id) in ids.iter().enumerate() {
            if ids[..i].contains(&id) {
                return Err(ValidationError::DuplicateWaitId { rank, op_index, id });
            }
        }
        return Ok(());
    }
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    for &id in ids {
        if !seen.insert(id) {
            return Err(ValidationError::DuplicateWaitId { rank, op_index, id });
        }
    }
    Ok(())
}

/// Validate `program` against a cluster with `cluster_ranks` ranks.
pub fn validate(program: &Program, cluster_ranks: usize) -> Result<(), ValidationError> {
    let n = program.num_ranks();
    if n != cluster_ranks {
        return Err(ValidationError::RankCountMismatch { program: n, cluster: cluster_ranks });
    }
    // Per-channel send and receive counts must agree, otherwise the
    // simulation deadlocks (or leaves unmatched traffic behind).
    let mut sends: HashMap<(RankId, RankId, Tag), usize> = HashMap::new();
    let mut recvs: HashMap<(RankId, RankId, Tag), usize> = HashMap::new();

    for (rank, rp) in program.ranks.iter().enumerate() {
        for (op_index, op) in rp.ops.iter().enumerate() {
            let check_target = |target: RankId| -> Result<(), ValidationError> {
                if target >= n {
                    Err(ValidationError::RankOutOfRange { rank, op_index, target })
                } else if target == rank {
                    Err(ValidationError::SelfMessage { rank, op_index })
                } else {
                    Ok(())
                }
            };
            match op {
                Op::PutNotify { dst, bytes, .. } => {
                    check_target(*dst)?;
                    if *bytes == 0 {
                        return Err(ValidationError::ZeroBytePut { rank, op_index });
                    }
                }
                Op::Notify { dst, .. } => check_target(*dst)?,
                Op::Send { dst, tag, .. } | Op::Isend { dst, tag, .. } => {
                    check_target(*dst)?;
                    *sends.entry((rank, *dst, *tag)).or_default() += 1;
                }
                Op::Recv { src, tag, .. } => {
                    check_target(*src)?;
                    *recvs.entry((*src, rank, *tag)).or_default() += 1;
                }
                Op::WaitNotifyAny { ids, count } => {
                    if *count == 0 || *count > ids.len() {
                        return Err(ValidationError::BadNotifyCount { rank, op_index });
                    }
                    check_distinct_wait_ids(ids, rank, op_index)?;
                }
                Op::WaitNotify { ids } => check_distinct_wait_ids(ids, rank, op_index)?,
                Op::Compute { seconds } if !seconds.is_finite() || *seconds < 0.0 => {
                    return Err(ValidationError::BadComputeDuration { rank, op_index });
                }
                _ => {}
            }
        }
    }

    for (&(src, dst, tag), &s) in &sends {
        let r = recvs.get(&(src, dst, tag)).copied().unwrap_or(0);
        if r != s {
            return Err(ValidationError::UnmatchedChannel { src, dst, tag, sends: s, recvs: r });
        }
    }
    for (&(src, dst, tag), &r) in &recvs {
        let s = sends.get(&(src, dst, tag)).copied().unwrap_or(0);
        if r != s {
            return Err(ValidationError::UnmatchedChannel { src, dst, tag, sends: s, recvs: r });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 100, 0);
        b.recv(1, 0, 100, 0);
        b.put_notify(0, 1, 8, 1);
        b.wait_notify(1, &[1]);
        assert!(validate(&b.build(), 2).is_ok());
    }

    #[test]
    fn rank_count_mismatch_detected() {
        let p = Program::empty(3);
        assert!(matches!(validate(&p, 4), Err(ValidationError::RankCountMismatch { .. })));
    }

    #[test]
    fn out_of_range_target_detected() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 5, 8, 0);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::RankOutOfRange { target: 5, .. })));
    }

    #[test]
    fn self_message_detected() {
        let mut b = ProgramBuilder::new(2);
        b.send(1, 1, 8, 0);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::SelfMessage { rank: 1, .. })));
    }

    #[test]
    fn unmatched_channel_detected() {
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 100, 0);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::UnmatchedChannel { .. })));
    }

    #[test]
    fn bad_notify_count_detected() {
        let mut b = ProgramBuilder::new(2);
        b.wait_notify_any(0, &[1, 2], 3);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::BadNotifyCount { .. })));
    }

    #[test]
    fn duplicate_wait_ids_detected() {
        // `WaitNotify` with a repeated id: one arrival would be counted twice
        // and the second consumption would underflow a zero counter.
        let mut b = ProgramBuilder::new(2);
        b.wait_notify(0, &[4, 4]);
        assert!(matches!(
            validate(&b.build(), 2),
            Err(ValidationError::DuplicateWaitId { rank: 0, op_index: 0, id: 4 })
        ));
        // Same for `WaitNotifyAny`.
        let mut b = ProgramBuilder::new(2);
        b.wait_notify_any(1, &[7, 2, 7], 1);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::DuplicateWaitId { rank: 1, id: 7, .. })));
        // Distinct ids stay valid.
        let mut ok = ProgramBuilder::new(2);
        ok.notify(0, 1, 2);
        ok.notify(0, 1, 7);
        ok.wait_notify_any(1, &[7, 2], 2);
        assert!(validate(&ok.build(), 2).is_ok());
    }

    #[test]
    fn zero_byte_put_detected() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 0, 3);
        b.wait_notify(1, &[3]);
        assert!(matches!(validate(&b.build(), 2), Err(ValidationError::ZeroBytePut { rank: 0, op_index: 0 })));
        // The payload-free form of the same synchronization is fine.
        let mut ok = ProgramBuilder::new(2);
        ok.notify(0, 1, 3);
        ok.wait_notify(1, &[3]);
        assert!(validate(&ok.build(), 2).is_ok());
    }

    #[test]
    fn negative_compute_detected() {
        let mut b = ProgramBuilder::new(1);
        b.compute(0, -1.0);
        assert!(matches!(validate(&b.build(), 1), Err(ValidationError::BadComputeDuration { .. })));
    }

    #[test]
    fn errors_format_human_readably() {
        let e = ValidationError::UnmatchedChannel { src: 0, dst: 1, tag: 2, sends: 3, recvs: 1 };
        let s = e.to_string();
        assert!(s.contains("0->1"));
        assert!(s.contains("3 sends"));
    }
}
