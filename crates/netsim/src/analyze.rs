//! Whole-program static schedule analysis: deadlock, notification
//! conservation, and one-sided buffer races — without simulating time.
//!
//! The GASPI collectives in this repository are one-sided: a put lands in a
//! remote buffer with no matching receive, so a wrong schedule fails
//! *silently* (lost updates, stale reads) or hangs (a wait whose
//! notifications never arrive).  [`mod@crate::validate`] catches local per-op
//! mistakes; this module proves global properties of the whole schedule
//! before the engine spends a single virtual nanosecond on it:
//!
//! 1. **Deadlock / starvation** — an abstract, timeless execution over
//!    per-(rank, notify-id) notification budgets.  Every notification is
//!    assumed to arrive the instant it is issued (the most optimistic
//!    schedule), so a wait that still cannot be satisfied when the abstract
//!    execution stalls is blocked on suppliers that are themselves
//!    transitively blocked: a cross-rank wait-for cycle.  A wait whose
//!    demand exceeds the *total* possible production for an id is reported
//!    separately as [`AnalysisError::Starvation`] — a terminal deficit no
//!    interleaving can repair.
//! 2. **Notification conservation** — notifications produced but never
//!    consumable ([`AnalysisError::NotificationLeak`]) and waits that can
//!    under-consume relative to a worst-case arrival interleaving
//!    ([`AnalysisError::ConsumptionRace`]): a `WaitNotifyAny` with
//!    `count < ids.len()` may drain an arrival a later wait depends on,
//!    depending purely on arrival order.
//! 3. **One-sided buffer races** — the op IR carries no segment offsets, so
//!    the landing slot of a put is identified by its `(destination rank,
//!    notification id)` pair, which is exactly how the paper's collectives
//!    address their slots.  Flagged: the same slot written by two different
//!    ranks ([`AnalysisError::MultiWriterRace`]), a writer reusing a slot
//!    without an intervening acknowledgement chain ordering the reuse after
//!    the reader's consumption ([`AnalysisError::UnsyncedSlotReuse`]), and a
//!    payload that is never waited on at all before the program ends
//!    ([`AnalysisError::UnsyncedPayloadRead`]) — data that lands but is
//!    never safe to read.
//!
//! ## Complexity: per unique segment, not per rank
//!
//! All three analyses run on the [`CompiledProgram`] arena of PR 7, which
//! stores each distinct rank-relative op stream **once**.  Ranks sharing a
//! segment are grouped into *classes*; classes are further split into
//! *pieces* — maximal rank intervals whose incoming supply (which producer
//! op feeds which notification id, and how many times) is uniform — by
//! interval arithmetic over the rank space: a delta-coded put from a class
//! covering `[lo, hi)` supplies `[lo+c, hi+c) mod p` (at most two
//! intervals), and an xor-coded put resolves by decomposing `[lo, hi)`
//! into aligned power-of-two blocks, each of which xor maps onto one
//! aligned block of the same size (at most `O(log p)` intervals — never a
//! per-rank enumeration).  Every per-op check then runs once per piece
//! instead of once per rank, so the p = 2^20 windowed ring — two shared
//! segments, three pieces — is analyzed in the time and memory of a
//! handful of ranks: `O(unique segment ops + supply edges + p)` (the `p`
//! term is the single scan of the rank→segment table; nothing else is
//! per-rank).  The one exception is the `certain` classification of an
//! already-found deadlock, which sweeps the stalled pieces to a second
//! fixpoint: clean schedules never pay for it, and its work is bounded
//! by the residual (unexecuted) ops of the blocked pieces per sweep.
//!
//! ## Soundness and approximation
//!
//! The abstract execution advances each piece as one representative rank
//! in lockstep and gates remote supply on the *minimum* cursor over the
//! producing class's pieces — supply is never assumed available before
//! every rank of the producing class could have issued it.  Completion of
//! the abstract execution therefore implies the engine completes (the
//! engine's schedule is one of the interleavings the optimistic semantics
//! dominates).
//!
//! Lockstep alone is too coarse for one legitimate pattern: a pipeline
//! *within* one segment, where every rank of a piece waits on supply from
//! an earlier (or later) rank of the same interned segment — rank 0 puts,
//! rank r waits for r−1 and forwards.  Rank by rank the chain drains, but
//! no piece can take the first step as a unit.  When the execution stalls,
//! such pieces are discharged by *pipeline certificates*: a rank-order
//! induction (ascending or descending) that admits in-piece supply from
//! ranks strictly on the hypothesis side once the boundary ranks' external
//! writers have individually passed the producing op, re-runs the
//! representative under that hypothesis, and commits its progress.  A full
//! completion commits unconditionally; a prefix commit to cursor `k`
//! additionally requires every inductively-supplied producing op consumed
//! so far to lie below `k` (the hypothesis "every rank reaches op `k`"
//! produces nothing beyond `k`).
//!
//! A stall that survives certification is reported as a deadlock.  It is
//! `certain` only when (a) consumption is deterministic for every piece
//! that could still run — no class of an incomplete piece contains a
//! `WaitNotifyAny` demanding less than its full id set (which ids such a
//! wait drains depends on arrival order; completed pieces are exempt,
//! since whatever a finished piece chose to consume it produced everything
//! it can) — and (b) the residual stalls under every arrival order: the
//! stalled state is re-run to fixpoint under the *over*-approximating
//! per-rank gate (a supply edge is granted as soon as any rank in its
//! writer interval individually passed the producing op, and a grant
//! unblocks the whole piece), and even that run leaves a piece
//! incomplete.  Every concrete order's progress lies pointwise below that
//! fixpoint, so its stall makes the deadlock order-independent; if it
//! completes instead, some rank might proceed where the lockstep quotient
//! cannot, and the deadlock is reported with
//! `certain: false`.  Blocking `Send` is modeled eagerly (non-blocking):
//! whether a rendezvous handshake blocks is a property of the cost model's
//! eager threshold, not of the schedule.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::cluster::RankId;
use crate::compiled::{decode_target, CompiledProgram, OpKind, TargetMode};
use crate::program::{NotifyId, Program};
use crate::source::ProgramSource;
use crate::validate::ValidationError;

/// A defect found by the static analyzer.
///
/// Each error names a *representative* rank; `ranks_affected` counts how
/// many ranks of the same equivalence class exhibit the identical defect
/// (the analyzer never enumerates them individually).
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// A wait demands more arrivals of an id than the whole program can
    /// ever produce for this rank — no interleaving satisfies it.
    Starvation {
        /// Representative blocked rank.
        rank: RankId,
        /// Program-order index of the blocked wait.
        op_index: usize,
        /// The starved notification id.
        id: NotifyId,
        /// Arrivals of `id` this rank's waits consume up to and including
        /// the blocked one.
        required: u64,
        /// Total arrivals of `id` the program can deliver to this rank.
        produced: u64,
        /// Ranks of the same class with the identical deficit.
        ranks_affected: usize,
    },
    /// The abstract execution stalled with ranks blocked on waits whose
    /// remaining suppliers are transitively blocked: a cross-rank wait-for
    /// cycle.
    Deadlock {
        /// One entry per blocked piece: representative rank, op index, and
        /// a description of what it waits for.
        blocked: Vec<BlockedWait>,
        /// True when the stall is provably a deadlock under every arrival
        /// order: consumption is deterministic for every piece that could
        /// still run (no partial `WaitNotifyAny` in an incomplete piece's
        /// class) and no individual rank can make progress the lockstep
        /// abstraction missed (see the module docs).  Otherwise the
        /// deadlock is reachable only under some arrival orders.
        certain: bool,
    },
    /// Notifications produced for a rank that no wait can ever consume.
    NotificationLeak {
        /// Receiving rank (representative).
        rank: RankId,
        /// The leaked notification id.
        id: NotifyId,
        /// Arrivals of `id` delivered to this rank.
        produced: u64,
        /// Maximum arrivals of `id` this rank's waits can consume.
        consumable: u64,
        /// Ranks of the same class with the identical leak.
        ranks_affected: usize,
    },
    /// A wait can be starved by an adversarial arrival order: earlier
    /// partial `WaitNotifyAny` ops may drain the arrivals it needs.
    ConsumptionRace {
        /// Representative rank.
        rank: RankId,
        /// Program-order index of the endangered wait.
        op_index: usize,
        /// The id that can be drained from under it.
        id: NotifyId,
        /// Arrivals of `id` left in the worst case when the wait runs
        /// (zero or negative means it can starve).
        worst_case_available: i64,
        /// Ranks of the same class with the identical race.
        ranks_affected: usize,
    },
    /// Two different ranks put payloads into the same `(rank, notify-id)`
    /// landing slot: the second arrival overwrites the first regardless of
    /// arrival order.
    MultiWriterRace {
        /// Receiving rank (representative) whose slot is contested.
        rank: RankId,
        /// The contested slot's notification id.
        id: NotifyId,
        /// One contending writer.
        writer_a: RankId,
        /// Another contending writer.
        writer_b: RankId,
        /// Ranks of the same class with the identically contested slot.
        ranks_affected: usize,
    },
    /// A writer puts twice into the same remote slot with no
    /// acknowledgement chain ordering the reuse after the reader's
    /// consumption of the first payload — the second put can overwrite
    /// unread data.
    UnsyncedSlotReuse {
        /// The reusing writer (representative).
        writer: RankId,
        /// The slot's owning rank.
        rank: RankId,
        /// The reused slot's notification id.
        id: NotifyId,
        /// Op index of the first put in the writer's program.
        first_put: usize,
        /// Op index of the overwriting put.
        second_put: usize,
        /// Ranks of the same class with the identical reuse.
        ranks_affected: usize,
    },
    /// A payload lands in a slot its owner never waits on: the data is
    /// never ordered before any read and is silently unusable.
    UnsyncedPayloadRead {
        /// The slot's owning rank (representative).
        rank: RankId,
        /// The never-awaited slot's notification id.
        id: NotifyId,
        /// The rank whose payload is lost.
        writer: RankId,
        /// Ranks of the same class with the identical lost payload.
        ranks_affected: usize,
    },
}

/// One blocked piece in a [`AnalysisError::Deadlock`] report.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedWait {
    /// Representative rank of the blocked piece.
    pub rank: RankId,
    /// Program-order index of the blocked op.
    pub op_index: usize,
    /// Human-readable description of what the op waits for.
    pub what: String,
    /// Ranks of the same class blocked identically.
    pub ranks_affected: usize,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Starvation { rank, op_index, id, required, produced, ranks_affected } => write!(
                f,
                "starvation: rank {rank} (x{ranks_affected}) op {op_index} needs {required} arrival(s) of \
                 notification {id} but the program produces only {produced}"
            ),
            AnalysisError::Deadlock { blocked, certain } => {
                write!(f, "{} deadlock; blocked:", if *certain { "certain" } else { "possible" })?;
                for b in blocked {
                    write!(f, " [rank {} (x{}) at op {}: {}]", b.rank, b.ranks_affected, b.op_index, b.what)?;
                }
                Ok(())
            }
            AnalysisError::NotificationLeak { rank, id, produced, consumable, ranks_affected } => write!(
                f,
                "notification leak: rank {rank} (x{ranks_affected}) receives {produced} arrival(s) of \
                 notification {id} but can consume at most {consumable}"
            ),
            AnalysisError::ConsumptionRace { rank, op_index, id, worst_case_available, ranks_affected } => write!(
                f,
                "consumption race: rank {rank} (x{ranks_affected}) op {op_index} waits on notification {id} \
                 but an adversarial arrival order leaves only {worst_case_available} arrival(s) for it"
            ),
            AnalysisError::MultiWriterRace { rank, id, writer_a, writer_b, ranks_affected } => write!(
                f,
                "buffer race: ranks {writer_a} and {writer_b} both put payloads into slot (rank {rank} \
                 (x{ranks_affected}), notification {id})"
            ),
            AnalysisError::UnsyncedSlotReuse { writer, rank, id, first_put, second_put, ranks_affected } => write!(
                f,
                "buffer race: rank {writer} (x{ranks_affected}) reuses slot (rank {rank}, notification {id}) \
                 at op {second_put} with no acknowledgement ordering it after the consumption of op {first_put}"
            ),
            AnalysisError::UnsyncedPayloadRead { rank, id, writer, ranks_affected } => write!(
                f,
                "buffer race: the payload rank {writer} puts into slot (rank {rank} (x{ranks_affected}), \
                 notification {id}) is never waited on and can never be safely read"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Result of analyzing a program: the defects found plus the structural
/// statistics backing the complexity claim.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Every defect found, in analysis order (conservation, races,
    /// deadlock).
    pub errors: Vec<AnalysisError>,
    /// Rank equivalence classes (= unique `(segment, decode-mode)` pairs).
    pub classes: usize,
    /// Supply-uniform rank intervals actually analyzed.
    pub pieces: usize,
    /// Ranks covered by the analysis.
    pub num_ranks: usize,
}

impl AnalysisReport {
    /// True when no defect of any class was found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// True when no deadlock or starvation was found (the schedule
    /// completes under every arrival order the analysis certifies).
    pub fn is_deadlock_free(&self) -> bool {
        !self.errors.iter().any(|e| matches!(e, AnalysisError::Deadlock { .. } | AnalysisError::Starvation { .. }))
    }
}

/// Analyze an already-compiled program (see the [module docs](self)).
pub fn analyze_compiled(prog: &CompiledProgram) -> AnalysisReport {
    Analyzer::new(prog).run()
}

/// Compile (which validates) and analyze a materialized program.
///
/// ```
/// use ec_netsim::{analyze, ProgramBuilder};
///
/// // Rank 0 puts at rank 1, which waits for the notification: clean.
/// let mut b = ProgramBuilder::new(2);
/// b.put_notify(0, 1, 1024, 7);
/// b.wait_notify(1, &[7]);
/// assert!(analyze(&b.build()).unwrap().is_clean());
///
/// // Remove the put and the wait can never be satisfied: starvation.
/// let mut b = ProgramBuilder::new(2);
/// b.wait_notify(1, &[7]);
/// let report = analyze(&b.build()).unwrap();
/// assert!(!report.is_deadlock_free());
/// ```
pub fn analyze(program: &Program) -> Result<AnalysisReport, ValidationError> {
    Ok(analyze_compiled(&program.compile()?))
}

/// Compile (which validates) and analyze a symbolic program source without
/// materializing all ranks.
pub fn analyze_source<S: ProgramSource>(source: &S) -> Result<AnalysisReport, ValidationError> {
    Ok(analyze_compiled(&CompiledProgram::from_source(source)?))
}

/// A maximal run of ranks sharing one arena segment, as `[lo, hi)`
/// intervals of the rank space.
#[derive(Debug)]
struct Class {
    start: usize,
    len: usize,
    mode: TargetMode,
    ivs: Vec<(usize, usize)>,
    piece_idx: Vec<usize>,
}

/// One incoming supply edge of a piece: `count` arrivals per receiving
/// rank, produced by op `op` of class `class`.
#[derive(Debug, Clone, Copy)]
struct Supply {
    class: u32,
    op: u32,
    count: u64,
    /// Raw target code of the producing op (recovers the writer rank).
    code: u32,
    mode: TargetMode,
    payload: bool,
}

/// A rank interval with a uniform segment *and* uniform incoming supply.
#[derive(Debug)]
struct Piece {
    lo: usize,
    hi: usize,
    class: u32,
    /// Notification supply: id → producing edges.
    notify: HashMap<NotifyId, Vec<Supply>>,
    /// Two-sided message supply: (source rank of the representative, tag)
    /// → producing edges.
    msgs: HashMap<(RankId, u32), Vec<Supply>>,
}

impl Piece {
    fn ranks(&self) -> usize {
        self.hi - self.lo
    }

    /// The rank whose decoded view stands for every rank of the piece.
    fn rep(&self) -> RankId {
        self.lo
    }
}

/// The writer rank whose op with target code `code` reaches receiver `r`.
fn writer_of(r: RankId, code: u32, mode: TargetMode, n: usize) -> RankId {
    match mode {
        TargetMode::Delta => (r + n - code as usize % n) % n,
        TargetMode::Xor => r ^ code as usize,
    }
}

/// Append `[lo, hi) + c (mod n)` to `out` as up to two normalized
/// intervals.
fn shift_interval(lo: usize, hi: usize, c: usize, n: usize, out: &mut Vec<(usize, usize)>) {
    debug_assert!(lo < hi && hi <= n);
    let a = (lo + c) % n;
    let len = hi - lo;
    if a + len <= n {
        out.push((a, a + len));
    } else {
        out.push((a, n));
        out.push((0, a + len - n));
    }
}

/// Receiver intervals of an op with target `code` issued by every rank in
/// `[lo, hi)`.  Delta codes rotate the interval (at most two intervals).
/// Xor codes are resolved by decomposing `[lo, hi)` into aligned
/// power-of-two blocks: xor by any code maps an aligned block `[b, b+2^k)`
/// (with `2^k | b`) onto the aligned block of the same size whose high bits
/// are `b ^ code` — so an arbitrary interval yields at most
/// `O(log(hi - lo))` receiver intervals, never a per-rank enumeration.
fn receiver_intervals(lo: usize, hi: usize, code: u32, mode: TargetMode, n: usize, out: &mut Vec<(usize, usize)>) {
    match mode {
        TargetMode::Delta => shift_interval(lo, hi, code as usize % n, n, out),
        TargetMode::Xor => {
            let code = code as usize;
            let mut a = lo;
            while a < hi {
                // Largest power-of-two block starting at `a` that both
                // respects `a`'s alignment and fits inside `[a, hi)`.
                let align = if a == 0 { hi - a } else { a & a.wrapping_neg() };
                let fit = align.min(hi - a);
                let size = 1usize << (usize::BITS - 1 - fit.leading_zeros());
                let b = (a ^ code) & !(size - 1);
                out.push((b, b + size));
                a += size;
            }
        }
    }
}

/// What a piece's abstract execution is currently blocked on.
#[derive(Debug, Clone, PartialEq)]
enum Stuck {
    /// Done: every op executed.
    Done,
    /// Runnable (or not yet inspected).
    Ready,
    /// A notification wait that cannot be satisfied yet.
    Wait,
    /// A receive with no matching message available yet.
    Recv,
    /// Parked at a barrier.
    Barrier,
}

#[derive(Clone)]
struct PieceState {
    cursor: usize,
    stuck: Stuck,
    consumed: HashMap<NotifyId, u64>,
    msgs_consumed: HashMap<(RankId, u32), u64>,
}

struct Analyzer<'a> {
    prog: &'a CompiledProgram,
    n: usize,
    classes: Vec<Class>,
    pieces: Vec<Piece>,
    /// Sorted piece boundaries (`pieces[i].lo`), for rank → piece lookup.
    piece_starts: Vec<usize>,
    /// Per class (indexed by class id): does any of the class's ops demand
    /// `WaitNotifyAny` with `count < ids.len()`?  Consumption is
    /// nondeterministic exactly for those classes, so a reported deadlock
    /// is only `certain` when no *still-incomplete* piece belongs to one.
    partial_any: Vec<bool>,
    errors: Vec<AnalysisError>,
}

impl<'a> Analyzer<'a> {
    fn new(prog: &'a CompiledProgram) -> Self {
        Self {
            prog,
            n: prog.num_ranks(),
            classes: Vec::new(),
            pieces: Vec::new(),
            piece_starts: Vec::new(),
            partial_any: Vec::new(),
            errors: Vec::new(),
        }
    }

    fn run(mut self) -> AnalysisReport {
        self.build_classes();
        self.build_pieces();
        self.conservation_and_races();
        self.abstract_execution();
        AnalysisReport {
            errors: self.errors,
            classes: self.classes.len(),
            pieces: self.pieces.len(),
            num_ranks: self.n,
        }
    }

    /// Group ranks into classes by their `(segment, decode-mode)` entry —
    /// the only per-rank scan in the whole analysis.
    fn build_classes(&mut self) {
        let mut index: HashMap<(usize, usize, TargetMode), usize> = HashMap::new();
        for rank in 0..self.n {
            let key = self.prog.raw_entry(rank);
            match index.entry(key) {
                Entry::Occupied(e) => {
                    let class = &mut self.classes[*e.get()];
                    let last = class.ivs.last_mut().expect("classes always hold an interval");
                    if last.1 == rank {
                        last.1 = rank + 1;
                    } else {
                        class.ivs.push((rank, rank + 1));
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(self.classes.len());
                    self.classes.push(Class {
                        start: key.0,
                        len: key.1,
                        mode: key.2,
                        ivs: vec![(rank, rank + 1)],
                        piece_idx: Vec::new(),
                    });
                }
            }
        }
    }

    /// Split classes into supply-uniform pieces and attribute every
    /// producing op's arrivals to the pieces it reaches.
    fn build_pieces(&mut self) {
        // Gather production edges: (receiver interval, id-or-tag key,
        // producing class/op, payload?).  `scratch` reuses one allocation
        // for the receiver-interval arithmetic.
        struct Contribution {
            lo: usize,
            hi: usize,
            notify: Option<NotifyId>,
            tag: u32,
            supply: Supply,
        }
        let mut contributions: Vec<Contribution> = Vec::new();
        let mut scratch: Vec<(usize, usize)> = Vec::new();
        self.partial_any = vec![false; self.classes.len()];
        for (ci, class) in self.classes.iter().enumerate() {
            for op in 0..class.len {
                let (kind, a, b, _c) = self.prog.raw_op(class.start + op);
                let (notify, tag, payload) = match kind {
                    OpKind::PutNotify => (Some(b), 0, true),
                    OpKind::Notify => (Some(b), 0, false),
                    OpKind::Send | OpKind::Isend => (None, b, false),
                    OpKind::WaitAny => {
                        let count = _c as usize;
                        if count < b as usize {
                            self.partial_any[ci] = true;
                        }
                        continue;
                    }
                    _ => continue,
                };
                let supply = Supply { class: ci as u32, op: op as u32, count: 1, code: a, mode: class.mode, payload };
                for &(lo, hi) in &class.ivs {
                    scratch.clear();
                    receiver_intervals(lo, hi, a, class.mode, self.n, &mut scratch);
                    for &(rlo, rhi) in &scratch {
                        contributions.push(Contribution { lo: rlo, hi: rhi, notify, tag, supply });
                    }
                }
            }
        }

        // Piece boundaries: class interval bounds plus contribution bounds.
        let mut bounds: Vec<usize> = Vec::new();
        for class in &self.classes {
            for &(lo, hi) in &class.ivs {
                bounds.push(lo);
                bounds.push(hi);
            }
        }
        for c in &contributions {
            bounds.push(c.lo);
            bounds.push(c.hi);
        }
        bounds.sort_unstable();
        bounds.dedup();

        // Build pieces (atomic intervals within one class interval).
        let class_of = {
            // Sorted (lo, hi, class) triples for binary search.
            let mut spans: Vec<(usize, usize, u32)> = Vec::new();
            for (ci, class) in self.classes.iter().enumerate() {
                for &(lo, hi) in &class.ivs {
                    spans.push((lo, hi, ci as u32));
                }
            }
            spans.sort_unstable();
            spans
        };
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo >= self.n {
                break;
            }
            let i = class_of.partition_point(|&(s, _, _)| s <= lo) - 1;
            let (_, span_hi, ci) = class_of[i];
            debug_assert!(hi <= span_hi, "piece [{lo},{hi}) crosses a class boundary");
            let pi = self.pieces.len();
            self.classes[ci as usize].piece_idx.push(pi);
            self.pieces.push(Piece { lo, hi, class: ci, notify: HashMap::new(), msgs: HashMap::new() });
        }
        self.piece_starts = self.pieces.iter().map(|p| p.lo).collect();

        // Attribute contributions: every contribution covers a whole run of
        // pieces by construction.
        for c in &contributions {
            let mut pi = self.piece_starts.partition_point(|&s| s <= c.lo) - 1;
            while pi < self.pieces.len() && self.pieces[pi].lo < c.hi {
                let piece = &mut self.pieces[pi];
                debug_assert!(piece.lo >= c.lo && piece.hi <= c.hi);
                if let Some(id) = c.notify {
                    push_supply(piece.notify.entry(id).or_default(), c.supply);
                } else {
                    let src = writer_of(piece.rep(), c.supply.code, c.supply.mode, self.n);
                    push_supply(piece.msgs.entry((src, c.tag)).or_default(), c.supply);
                }
                pi += 1;
            }
        }
    }

    /// Fill `buf` with the wait-id list of the op at arena index `idx`
    /// (empty for non-wait ops) and return how many distinct ids the op
    /// must consume.
    fn wait_ids(&self, idx: usize, buf: &mut Vec<NotifyId>) -> usize {
        buf.clear();
        let (kind, a, b, c) = self.prog.raw_op(idx);
        match kind {
            OpKind::WaitOne => {
                buf.push(a);
                1
            }
            OpKind::WaitMany => {
                buf.extend_from_slice(self.prog.pool_ids(a, b));
                b as usize
            }
            OpKind::WaitAny => {
                buf.extend_from_slice(self.prog.pool_ids(a, b));
                c as usize
            }
            _ => 0,
        }
    }

    /// Analysis 2 + 3: per-piece budget walk (leaks, terminal deficits,
    /// adversarial-order consumption races) and slot-identity race checks.
    fn conservation_and_races(&mut self) {
        let mut errors = Vec::new();
        for piece in &self.pieces {
            let class = &self.classes[piece.class as usize];
            let rep = piece.rep();
            let total: HashMap<NotifyId, u64> =
                piece.notify.iter().map(|(&id, srcs)| (id, srcs.iter().map(|s| s.count).sum())).collect();

            // One in-order walk: mandatory and optional consumption per id.
            let mut mand: HashMap<NotifyId, u64> = HashMap::new();
            let mut opt: HashMap<NotifyId, u64> = HashMap::new();
            let mut first_wait: HashMap<NotifyId, usize> = HashMap::new();
            let mut wids: Vec<NotifyId> = Vec::new();
            for op in 0..class.len {
                let idx = class.start + op;
                let (kind, _, _, _) = self.prog.raw_op(idx);
                if !matches!(kind, OpKind::WaitOne | OpKind::WaitMany | OpKind::WaitAny) {
                    continue;
                }
                let count = self.wait_ids(idx, &mut wids);
                let partial = kind == OpKind::WaitAny && count < wids.len();
                if partial {
                    // Worst case the any-wait cannot find `count` distinct
                    // available ids.
                    let worst_avail = wids
                        .iter()
                        .filter(|&&id| {
                            let t = total.get(&id).copied().unwrap_or(0) as i64;
                            t - mand.get(&id).copied().unwrap_or(0) as i64 - opt.get(&id).copied().unwrap_or(0) as i64
                                >= 1
                        })
                        .count();
                    let best_avail = wids
                        .iter()
                        .filter(|&&id| total.get(&id).copied().unwrap_or(0) > mand.get(&id).copied().unwrap_or(0))
                        .count();
                    if best_avail >= count && worst_avail < count {
                        // Name an id that is actually endangered: available
                        // under some arrival order (counted by `best_avail`)
                        // but drained away in the worst case.
                        let endangered = wids
                            .iter()
                            .copied()
                            .find(|&id| {
                                let t = total.get(&id).copied().unwrap_or(0) as i64;
                                let m = mand.get(&id).copied().unwrap_or(0) as i64;
                                let o = opt.get(&id).copied().unwrap_or(0) as i64;
                                t > m && t - m - o < 1
                            })
                            .unwrap_or(wids[0]);
                        errors.push(AnalysisError::ConsumptionRace {
                            rank: rep,
                            op_index: op,
                            id: endangered,
                            worst_case_available: worst_avail as i64 - count as i64,
                            ranks_affected: piece.ranks(),
                        });
                    }
                    for &id in &wids {
                        *opt.entry(id).or_insert(0) += 1;
                        first_wait.entry(id).or_insert(op);
                    }
                } else {
                    for &id in &wids {
                        let t = total.get(&id).copied().unwrap_or(0);
                        let m = mand.get(&id).copied().unwrap_or(0);
                        let o = opt.get(&id).copied().unwrap_or(0);
                        if t < m + 1 {
                            errors.push(AnalysisError::Starvation {
                                rank: rep,
                                op_index: op,
                                id,
                                required: m + 1,
                                produced: t,
                                ranks_affected: piece.ranks(),
                            });
                        } else if (t as i64) - (m as i64) - (o as i64) < 1 {
                            errors.push(AnalysisError::ConsumptionRace {
                                rank: rep,
                                op_index: op,
                                id,
                                worst_case_available: t as i64 - m as i64 - o as i64,
                                ranks_affected: piece.ranks(),
                            });
                        }
                        *mand.entry(id).or_insert(0) += 1;
                        first_wait.entry(id).or_insert(op);
                    }
                }
            }

            // Conservation: produced beyond what the waits can consume.
            let mut ids: Vec<NotifyId> = total.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let t = total[&id];
                let consumable = mand.get(&id).copied().unwrap_or(0) + opt.get(&id).copied().unwrap_or(0);
                if t > consumable {
                    let payload_writers = self.payload_writers(piece, id);
                    if consumable == 0 && !payload_writers.is_empty() {
                        errors.push(AnalysisError::UnsyncedPayloadRead {
                            rank: rep,
                            id,
                            writer: payload_writers[0].0,
                            ranks_affected: piece.ranks(),
                        });
                    } else {
                        errors.push(AnalysisError::NotificationLeak {
                            rank: rep,
                            id,
                            produced: t,
                            consumable,
                            ranks_affected: piece.ranks(),
                        });
                    }
                }
            }

            // Slot races: distinct writers, and same-writer reuse without
            // an acknowledgement chain.
            let mut slot_ids: Vec<NotifyId> = piece.notify.keys().copied().collect();
            slot_ids.sort_unstable();
            for id in slot_ids {
                let writers = self.payload_writers(piece, id);
                if writers.is_empty() {
                    continue;
                }
                if let Some(w) = writers.windows(2).find(|w| w[0].0 != w[1].0) {
                    errors.push(AnalysisError::MultiWriterRace {
                        rank: rep,
                        id,
                        writer_a: w[0].0,
                        writer_b: w[1].0,
                        ranks_affected: piece.ranks(),
                    });
                }
                // Same writer, two puts: the second must be ordered after
                // the reader consumed the first.
                for w in writers.windows(2).filter(|w| w[0].0 == w[1].0) {
                    let (writer, first_op) = w[0];
                    let second_op = w[1].1;
                    if !self.ack_chain_exists(writer, first_op, second_op, rep, first_wait.get(&id).copied()) {
                        errors.push(AnalysisError::UnsyncedSlotReuse {
                            writer,
                            rank: rep,
                            id,
                            first_put: first_op,
                            second_put: second_op,
                            ranks_affected: piece.ranks(),
                        });
                    }
                }
            }
        }
        self.errors.extend(errors);
    }

    /// Payload-carrying writers of slot `(piece, id)` as sorted
    /// `(writer rank, producing op index)` pairs.
    fn payload_writers(&self, piece: &Piece, id: NotifyId) -> Vec<(RankId, usize)> {
        let mut writers: Vec<(RankId, usize)> = piece
            .notify
            .get(&id)
            .map(|srcs| {
                srcs.iter()
                    .filter(|s| s.payload)
                    .map(|s| (writer_of(piece.rep(), s.code, s.mode, self.n), s.op as usize))
                    .collect()
            })
            .unwrap_or_default();
        writers.sort_unstable();
        writers
    }

    /// True when `writer` waits, between its two puts, on a notification
    /// the reader (`reader_rep`'s class) produces only after consuming the
    /// first put — a one-hop acknowledgement chain making the slot reuse
    /// safe.  `consume_at` is the reader's first wait on the reused id.
    fn ack_chain_exists(
        &self,
        writer: RankId,
        first_put: usize,
        second_put: usize,
        reader_rep: RankId,
        consume_at: Option<usize>,
    ) -> bool {
        let Some(consume_at) = consume_at else {
            return false; // Never consumed: reuse is unsynchronized.
        };
        let reader_class = {
            let pi = self.piece_starts.partition_point(|&s| s <= reader_rep) - 1;
            self.pieces[pi].class
        };
        let wpi = self.piece_starts.partition_point(|&s| s <= writer) - 1;
        let wpiece = &self.pieces[wpi];
        let wclass = &self.classes[wpiece.class as usize];
        let mut wids: Vec<NotifyId> = Vec::new();
        for op in first_put + 1..second_put {
            let idx = wclass.start + op;
            let (kind, _, _, _) = self.prog.raw_op(idx);
            if !matches!(kind, OpKind::WaitOne | OpKind::WaitMany | OpKind::WaitAny) {
                continue;
            }
            self.wait_ids(idx, &mut wids);
            for &ack in &wids {
                let Some(srcs) = wpiece.notify.get(&ack) else { continue };
                if srcs.iter().any(|s| s.class == reader_class && s.op as usize > consume_at) {
                    return true;
                }
            }
        }
        false
    }

    /// Analysis 1: timeless optimistic execution over the piece quotient.
    fn abstract_execution(&mut self) {
        let n_pieces = self.pieces.len();
        let mut state: Vec<PieceState> = (0..n_pieces)
            .map(|_| PieceState {
                cursor: 0,
                stuck: Stuck::Ready,
                consumed: HashMap::new(),
                msgs_consumed: HashMap::new(),
            })
            .collect();
        // Per class: minimum cursor over its pieces, plus the sorted wake
        // list (producing op → dependent piece) with a monotone pointer.
        let n_classes = self.classes.len();
        let mut class_min: Vec<usize> = vec![0; n_classes];
        let mut wake: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_classes];
        for (pi, piece) in self.pieces.iter().enumerate() {
            for srcs in piece.notify.values().chain(piece.msgs.values()) {
                for s in srcs {
                    wake[s.class as usize].push((s.op, pi as u32));
                }
            }
        }
        for w in &mut wake {
            w.sort_unstable();
            w.dedup();
        }
        let mut wake_ptr: Vec<usize> = vec![0; n_classes];

        let mut queue: VecDeque<usize> = (0..n_pieces).collect();
        let mut in_queue: Vec<bool> = vec![true; n_pieces];
        let mut at_barrier: usize = 0;
        let mut wids: Vec<NotifyId> = Vec::new();

        'fixpoint: loop {
            while let Some(pi) = queue.pop_front() {
                in_queue[pi] = false;
                let class_idx = self.pieces[pi].class as usize;
                let (start, len) = (self.classes[class_idx].start, self.classes[class_idx].len);
                let before = state[pi].cursor;
                if state[pi].stuck == Stuck::Barrier {
                    continue; // Only the barrier release path unparks these.
                }
                loop {
                    let cursor = state[pi].cursor;
                    if cursor >= len {
                        state[pi].stuck = Stuck::Done;
                        break;
                    }
                    let idx = start + cursor;
                    let (kind, a, b, _) = self.prog.raw_op(idx);
                    match kind {
                        OpKind::Compute
                        | OpKind::Reduce
                        | OpKind::Copy
                        | OpKind::PutNotify
                        | OpKind::Notify
                        | OpKind::Send
                        | OpKind::Isend
                        | OpKind::WaitAllSends => {
                            state[pi].cursor += 1;
                        }
                        OpKind::WaitOne | OpKind::WaitMany | OpKind::WaitAny => {
                            let count = self.wait_ids(idx, &mut wids);
                            let satisfied = if kind == OpKind::WaitAny && count < wids.len() {
                                self.try_consume_any(&self.pieces[pi], &mut state[pi], &wids, count, &class_min)
                            } else {
                                self.try_consume_all(&self.pieces[pi], &mut state[pi], &wids, &class_min)
                            };
                            if satisfied {
                                state[pi].cursor += 1;
                            } else {
                                state[pi].stuck = Stuck::Wait;
                                break;
                            }
                        }
                        OpKind::Recv => {
                            let piece = &self.pieces[pi];
                            let src = decode_target(piece.rep(), a, self.classes[class_idx].mode, self.n);
                            let key = (src, b);
                            let avail = piece.msgs.get(&key).map_or(0, |srcs| {
                                srcs.iter()
                                    .filter(|s| class_min[s.class as usize] > s.op as usize)
                                    .map(|s| s.count)
                                    .sum::<u64>()
                            });
                            let used = state[pi].msgs_consumed.get(&key).copied().unwrap_or(0);
                            if avail > used {
                                *state[pi].msgs_consumed.entry(key).or_insert(0) += 1;
                                state[pi].cursor += 1;
                            } else {
                                state[pi].stuck = Stuck::Recv;
                                break;
                            }
                        }
                        OpKind::Barrier => {
                            state[pi].stuck = Stuck::Barrier;
                            at_barrier += 1;
                            if at_barrier == n_pieces {
                                // Every rank is parked at a barrier: release.
                                at_barrier = 0;
                                for (qi, s) in state.iter_mut().enumerate() {
                                    debug_assert_eq!(s.stuck, Stuck::Barrier);
                                    s.cursor += 1;
                                    s.stuck = Stuck::Ready;
                                    if !in_queue[qi] {
                                        in_queue[qi] = true;
                                        queue.push_back(qi);
                                    }
                                }
                            }
                            break;
                        }
                    }
                }
                // Did this class's minimum cursor advance?  Wake dependents.
                if state[pi].cursor != before {
                    bump_class_min(
                        &self.classes,
                        &state,
                        &wake,
                        &mut wake_ptr,
                        &mut class_min,
                        &mut queue,
                        &mut in_queue,
                        class_idx,
                    );
                }
            }

            // The lockstep quotient stalled (or finished).  A pipeline *within*
            // one interned segment — every rank of a piece waiting on supply
            // from an earlier (or later) rank of the same segment — drains rank
            // by rank even though no piece can take the first step as a unit:
            // discharge such pieces by rank-order induction and resume.
            let mut progressed = false;
            for pi in 0..n_pieces {
                if !matches!(state[pi].stuck, Stuck::Wait | Stuck::Recv) {
                    continue;
                }
                let Some(commit) = self.pipeline_certificate(pi, &state, &class_min) else { continue };
                let s = &mut state[pi];
                s.cursor = commit.cursor;
                s.consumed = commit.consumed;
                s.msgs_consumed = commit.msgs_consumed;
                s.stuck = Stuck::Ready;
                if !in_queue[pi] {
                    in_queue[pi] = true;
                    queue.push_back(pi);
                }
                let ci = self.pieces[pi].class as usize;
                bump_class_min(
                    &self.classes,
                    &state,
                    &wake,
                    &mut wake_ptr,
                    &mut class_min,
                    &mut queue,
                    &mut in_queue,
                    ci,
                );
                progressed = true;
            }
            if !progressed {
                break 'fixpoint;
            }
        }

        // Stall diagnosis.
        let mut blocked = Vec::new();
        for (pi, s) in state.iter().enumerate() {
            if s.stuck == Stuck::Done {
                continue;
            }
            let piece = &self.pieces[pi];
            // Waits already reported as starvation by the budget walk are
            // not *additionally* a deadlock: the deficit alone explains the
            // stall.
            let starved = self.errors.iter().any(|e| {
                matches!(e, AnalysisError::Starvation { rank, op_index, .. }
                    if *rank == piece.rep() && *op_index == s.cursor)
            });
            if starved {
                continue;
            }
            let view = self.prog.rank_ops(piece.rep()).op(s.cursor);
            blocked.push(BlockedWait {
                rank: piece.rep(),
                op_index: s.cursor,
                what: format!("{view:?}"),
                ranks_affected: piece.ranks(),
            });
        }
        if !blocked.is_empty() {
            // `certain` needs two things.  Consumption must be deterministic
            // for every piece that could still run — a partial any-wait in a
            // *completed* piece cannot un-produce anything, so completed
            // pieces are exempt.  And the residual must stall under *every*
            // arrival order, which the lockstep stall alone cannot show:
            // re-run it under the over-approximating per-rank gate and
            // demand that even that run leaves some piece incomplete.
            let deterministic = state
                .iter()
                .enumerate()
                .all(|(pi, s)| s.stuck == Stuck::Done || !self.partial_any[self.pieces[pi].class as usize]);
            let certain = deterministic && self.residual_stalls_under_every_order(&state);
            self.errors.push(AnalysisError::Deadlock { blocked, certain });
        }
    }

    /// All-of consumption (`WaitNotify`, and `WaitNotifyAny` demanding its
    /// full set): satisfiable iff every id has an unconsumed arrival.
    fn try_consume_all(&self, piece: &Piece, state: &mut PieceState, ids: &[NotifyId], class_min: &[usize]) -> bool {
        let ok = ids.iter().all(|&id| self.avail(piece, state, id, class_min) >= 1);
        if ok {
            for &id in ids {
                *state.consumed.entry(id).or_insert(0) += 1;
            }
        }
        ok
    }

    /// Partial any-wait: needs `count` distinct available ids; consumes one
    /// arrival from each of the first `count` available ids in listed order
    /// — the engine's exact semantics.
    fn try_consume_any(
        &self,
        piece: &Piece,
        state: &mut PieceState,
        ids: &[NotifyId],
        count: usize,
        class_min: &[usize],
    ) -> bool {
        let available: Vec<NotifyId> =
            ids.iter().copied().filter(|&id| self.avail(piece, state, id, class_min) >= 1).collect();
        if available.len() < count {
            return false;
        }
        for &id in available.iter().take(count) {
            *state.consumed.entry(id).or_insert(0) += 1;
        }
        true
    }

    /// Unconsumed arrivals of `id` at `piece`, counting only supply whose
    /// producing op every rank of the producing class has passed.
    fn avail(&self, piece: &Piece, state: &PieceState, id: NotifyId, class_min: &[usize]) -> u64 {
        let produced: u64 = piece.notify.get(&id).map_or(0, |srcs| {
            srcs.iter().filter(|s| class_min[s.class as usize] > s.op as usize).map(|s| s.count).sum()
        });
        produced.saturating_sub(state.consumed.get(&id).copied().unwrap_or(0))
    }

    /// Try to advance a stalled piece by *rank-order induction* — the
    /// pipelined-chain pattern the lockstep quotient cannot express: every
    /// rank of the piece waits on supply from an earlier (ascending) or
    /// later (descending) rank of the same interned segment before
    /// producing its own.  See the module docs ("Soundness and
    /// approximation").
    fn pipeline_certificate(&self, pi: usize, state: &[PieceState], class_min: &[usize]) -> Option<CertCommit> {
        [Dir::Asc, Dir::Desc].into_iter().find_map(|dir| self.certificate_with(pi, dir, state, class_min))
    }

    /// One direction of [`Analyzer::pipeline_certificate`]: classify every
    /// supply edge of the piece, then re-run the representative's abstract
    /// execution under the induction hypothesis and commit its progress.
    ///
    /// Soundness is strong induction over the piece's ranks in `dir` order.
    /// Full completion commits unconditionally: rank `r` assumes every rank
    /// on the hypothesis side completed its *whole* segment, and the base
    /// ranks (whose writers fall outside the piece) were checked against
    /// the writers' actual cursors.  A prefix commit to cursor `k` proves
    /// only "every rank reaches op `k`", which produces just the ops below
    /// `k` — so it additionally requires every inductively-supplied
    /// producing op consumed so far to lie below `k`.
    fn certificate_with(&self, pi: usize, dir: Dir, state: &[PieceState], class_min: &[usize]) -> Option<CertCommit> {
        let piece = &self.pieces[pi];
        let class = &self.classes[piece.class as usize];

        let mut notify_sup: HashMap<NotifyId, CertSupply> = HashMap::new();
        for (&id, srcs) in &piece.notify {
            notify_sup.insert(id, self.cert_supply(piece, srcs, dir, state, class_min));
        }
        let mut msg_sup: HashMap<(RankId, u32), CertSupply> = HashMap::new();
        for (&key, srcs) in &piece.msgs {
            msg_sup.insert(key, self.cert_supply(piece, srcs, dir, state, class_min));
        }

        let start = state[pi].cursor;
        let mut cursor = start;
        let mut consumed = state[pi].consumed.clone();
        let mut msgs_consumed = state[pi].msgs_consumed.clone();
        // Largest inductively-supplied producing op relied upon so far.
        let mut inductive_bound: Option<usize> = None;
        let mut wids: Vec<NotifyId> = Vec::new();

        while cursor < class.len {
            let idx = class.start + cursor;
            let (kind, a, b, _) = self.prog.raw_op(idx);
            match kind {
                OpKind::Compute
                | OpKind::Reduce
                | OpKind::Copy
                | OpKind::PutNotify
                | OpKind::Notify
                | OpKind::Send
                | OpKind::Isend
                | OpKind::WaitAllSends => cursor += 1,
                OpKind::WaitOne | OpKind::WaitMany | OpKind::WaitAny => {
                    let count = self.wait_ids(idx, &mut wids);
                    let avail_of = |id: NotifyId, consumed: &HashMap<NotifyId, u64>| {
                        notify_sup
                            .get(&id)
                            .map_or(0, |cs| cs.avail)
                            .saturating_sub(consumed.get(&id).copied().unwrap_or(0))
                    };
                    let take: Vec<NotifyId> = if kind == OpKind::WaitAny && count < wids.len() {
                        let available: Vec<NotifyId> =
                            wids.iter().copied().filter(|&id| avail_of(id, &consumed) >= 1).collect();
                        if available.len() < count {
                            break;
                        }
                        available[..count].to_vec()
                    } else {
                        if !wids.iter().all(|&id| avail_of(id, &consumed) >= 1) {
                            break;
                        }
                        wids.clone()
                    };
                    for id in take {
                        *consumed.entry(id).or_insert(0) += 1;
                        if let Some(op) = notify_sup.get(&id).and_then(|cs| cs.inductive_op) {
                            inductive_bound = Some(inductive_bound.map_or(op, |m| m.max(op)));
                        }
                    }
                    cursor += 1;
                }
                OpKind::Recv => {
                    let src = decode_target(piece.rep(), a, class.mode, self.n);
                    let key = (src, b);
                    let avail = msg_sup.get(&key).map_or(0, |cs| cs.avail);
                    if avail <= msgs_consumed.get(&key).copied().unwrap_or(0) {
                        break;
                    }
                    *msgs_consumed.entry(key).or_insert(0) += 1;
                    if let Some(op) = msg_sup.get(&key).and_then(|cs| cs.inductive_op) {
                        inductive_bound = Some(inductive_bound.map_or(op, |m| m.max(op)));
                    }
                    cursor += 1;
                }
                OpKind::Barrier => break,
            }
        }
        let complete = cursor >= class.len;
        let prefix_sound = inductive_bound.is_none_or(|op| op < cursor);
        if complete || (cursor > start && prefix_sound) {
            Some(CertCommit { cursor, consumed, msgs_consumed })
        } else {
            None
        }
    }

    /// Arrivals one key's supply edges contribute under the certificate:
    /// globally-produced and certified edges count in full; the largest
    /// producing op among inductive edges is kept for the prefix-commit
    /// soundness check.
    fn cert_supply(
        &self,
        piece: &Piece,
        srcs: &[Supply],
        dir: Dir,
        state: &[PieceState],
        class_min: &[usize],
    ) -> CertSupply {
        let mut cs = CertSupply { avail: 0, inductive_op: None };
        for s in srcs {
            let op = s.op as usize;
            if class_min[s.class as usize] > op {
                cs.avail += s.count;
                continue;
            }
            match self.certify_edge(piece, s, dir, state) {
                EdgeCert::External => cs.avail += s.count,
                EdgeCert::Inductive => {
                    cs.avail += s.count;
                    cs.inductive_op = Some(cs.inductive_op.map_or(op, |m| m.max(op)));
                }
                EdgeCert::No => {}
            }
        }
        cs
    }

    /// Classify one supply edge of `piece` that the class-minimum gate
    /// currently rejects.  In-piece writers are admissible only on the
    /// induction side of `dir` (strictly lower ranks for ascending,
    /// strictly higher for descending); every writer outside the piece must
    /// have individually passed the producing op.
    fn certify_edge(&self, piece: &Piece, s: &Supply, dir: Dir, state: &[PieceState]) -> EdgeCert {
        let n = self.n;
        let (lo, hi) = (piece.lo, piece.hi);
        let op = s.op as usize;
        match s.mode {
            TargetMode::Delta => {
                let c = s.code as usize % n;
                if c == 0 {
                    return EdgeCert::No;
                }
                let mut inductive = false;
                // Writers of the non-wrapped readers `[max(lo, c), hi)` sit
                // at `r - c`: strictly lower than their reader.
                if lo.max(c) < hi {
                    match self.span_cert(lo.max(c) - c, hi - c, lo, hi, dir == Dir::Asc, op, state) {
                        Some(ind) => inductive |= ind,
                        None => return EdgeCert::No,
                    }
                }
                // Writers of the wrapped readers `[lo, min(hi, c))` sit at
                // `r + n - c`: strictly higher than their reader.
                if lo < hi.min(c) {
                    match self.span_cert(lo + n - c, hi.min(c) + n - c, lo, hi, dir == Dir::Desc, op, state) {
                        Some(ind) => inductive |= ind,
                        None => return EdgeCert::No,
                    }
                }
                if inductive {
                    EdgeCert::Inductive
                } else {
                    EdgeCert::External
                }
            }
            TargetMode::Xor => {
                // Xor supply carries no rank order to induct over: certify
                // only when every writer block lies outside the piece and
                // has individually passed the op.
                let mut blocks = Vec::new();
                receiver_intervals(lo, hi, s.code, TargetMode::Xor, n, &mut blocks);
                for (wa, wb) in blocks {
                    if wa < hi && wb > lo {
                        return EdgeCert::No;
                    }
                    if !self.ranks_past_op(wa, wb, op, state) {
                        return EdgeCert::No;
                    }
                }
                EdgeCert::External
            }
        }
    }

    /// Certify the writer span `[wa, wb)` feeding piece `[lo, hi)`:
    /// in-piece writers are admissible only when `hypothesis_side` holds;
    /// writers outside the piece must each have passed op `op`.  Returns
    /// whether any in-piece writer was admitted (the edge turns inductive),
    /// or `None` when the span cannot be certified.
    #[allow(clippy::too_many_arguments)]
    fn span_cert(
        &self,
        wa: usize,
        wb: usize,
        lo: usize,
        hi: usize,
        hypothesis_side: bool,
        op: usize,
        state: &[PieceState],
    ) -> Option<bool> {
        let mut inductive = false;
        if wa.max(lo) < wb.min(hi) {
            if !hypothesis_side {
                return None;
            }
            inductive = true;
        }
        let (ea, eb) = (wa, wb.min(lo));
        if ea < eb && !self.ranks_past_op(ea, eb, op, state) {
            return None;
        }
        let (ea, eb) = (wa.max(hi), wb);
        if ea < eb && !self.ranks_past_op(ea, eb, op, state) {
            return None;
        }
        Some(inductive)
    }

    /// True when every rank in `[a, b)` belongs to a piece whose abstract
    /// cursor has passed op index `op` of its segment.
    fn ranks_past_op(&self, a: usize, b: usize, op: usize, state: &[PieceState]) -> bool {
        let mut qi = self.piece_starts.partition_point(|&s| s <= a) - 1;
        while qi < self.pieces.len() && self.pieces[qi].lo < b {
            if state[qi].cursor <= op {
                return false;
            }
            qi += 1;
        }
        true
    }

    /// True when any rank in `[a, b)` belongs to a piece whose abstract
    /// cursor has passed op index `op` of its segment.
    fn any_rank_past_op(&self, a: usize, b: usize, op: usize, state: &[PieceState]) -> bool {
        let mut qi = self.piece_starts.partition_point(|&s| s <= a) - 1;
        while qi < self.pieces.len() && self.pieces[qi].lo < b {
            if state[qi].cursor > op {
                return true;
            }
            qi += 1;
        }
        false
    }

    /// True when a supply edge of `piece` could deliver to *some* rank of
    /// the piece under *some* arrival order: any rank in the edge's writer
    /// interval (the inverse image of the piece under the edge's target
    /// map) has individually passed the producing op.
    fn edge_live_for_any_rank(
        &self,
        piece: &Piece,
        sup: &Supply,
        state: &[PieceState],
        spans: &mut Vec<(usize, usize)>,
    ) -> bool {
        spans.clear();
        match sup.mode {
            TargetMode::Delta => {
                let c = sup.code as usize % self.n;
                shift_interval(piece.lo, piece.hi, self.n - c, self.n, spans);
            }
            TargetMode::Xor => {
                receiver_intervals(piece.lo, piece.hi, sup.code, TargetMode::Xor, self.n, spans);
            }
        }
        spans.iter().any(|&(wa, wb)| self.any_rank_past_op(wa, wb, sup.op as usize, state))
    }

    /// Unconsumed arrivals of `id` at `piece` under the *optimistic* gate:
    /// an edge counts as soon as any rank in its writer interval has
    /// passed the producing op (the class-minimum gate is subsumed —
    /// `class_min > op` implies every writer passed it).
    fn avail_optimistic(&self, piece: &Piece, ps: &PieceState, id: NotifyId, state: &[PieceState]) -> u64 {
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let produced: u64 = piece.notify.get(&id).map_or(0, |srcs| {
            srcs.iter().filter(|s| self.edge_live_for_any_rank(piece, s, state, &mut spans)).map(|s| s.count).sum()
        });
        produced.saturating_sub(ps.consumed.get(&id).copied().unwrap_or(0))
    }

    /// True when the stalled residual state cannot complete under *any*
    /// arrival order — the condition for reporting the deadlock `certain`.
    ///
    /// The lockstep quotient under-approximates progress (the class-minimum
    /// gate holds whole classes back on their slowest piece), so its stall
    /// alone proves nothing about other interleavings.  This re-runs the
    /// residual to fixpoint under the opposite, *over*-approximating gate:
    /// a supply edge is granted the moment any rank in its writer interval
    /// is individually past the producing op, and a grant unblocks the
    /// whole piece.  Every concrete arrival order's progress is pointwise
    /// below this run's fixpoint, so if even it leaves a piece incomplete,
    /// every order does.  Only sound for deterministic consumption — the
    /// caller has already ruled out partial any-waits in live classes.
    fn residual_stalls_under_every_order(&self, residual: &[PieceState]) -> bool {
        let mut state: Vec<PieceState> = residual.to_vec();
        let mut wids: Vec<NotifyId> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new();
        loop {
            let mut progressed = false;
            for pi in 0..self.pieces.len() {
                if matches!(state[pi].stuck, Stuck::Done | Stuck::Barrier) {
                    continue;
                }
                let piece = &self.pieces[pi];
                let class = &self.classes[piece.class as usize];
                loop {
                    let cursor = state[pi].cursor;
                    if cursor >= class.len {
                        state[pi].stuck = Stuck::Done;
                        break;
                    }
                    let idx = class.start + cursor;
                    let (kind, a, b, _) = self.prog.raw_op(idx);
                    match kind {
                        OpKind::Compute
                        | OpKind::Reduce
                        | OpKind::Copy
                        | OpKind::PutNotify
                        | OpKind::Notify
                        | OpKind::Send
                        | OpKind::Isend
                        | OpKind::WaitAllSends => {}
                        OpKind::WaitOne | OpKind::WaitMany | OpKind::WaitAny => {
                            let count = self.wait_ids(idx, &mut wids);
                            let available: Vec<NotifyId> = wids
                                .iter()
                                .copied()
                                .filter(|&id| self.avail_optimistic(piece, &state[pi], id, &state) >= 1)
                                .collect();
                            let take = if kind == OpKind::WaitAny { count.min(wids.len()) } else { wids.len() };
                            if available.len() < take {
                                state[pi].stuck = Stuck::Wait;
                                break;
                            }
                            for &id in available.iter().take(take) {
                                *state[pi].consumed.entry(id).or_insert(0) += 1;
                            }
                        }
                        OpKind::Recv => {
                            let src = decode_target(piece.rep(), a, class.mode, self.n);
                            let key = (src, b);
                            let produced: u64 = piece.msgs.get(&key).map_or(0, |srcs| {
                                srcs.iter()
                                    .filter(|s| self.edge_live_for_any_rank(piece, s, &state, &mut spans))
                                    .map(|s| s.count)
                                    .sum()
                            });
                            let used = state[pi].msgs_consumed.get(&key).copied().unwrap_or(0);
                            if produced <= used {
                                state[pi].stuck = Stuck::Recv;
                                break;
                            }
                            *state[pi].msgs_consumed.entry(key).or_insert(0) += 1;
                        }
                        OpKind::Barrier => {
                            state[pi].stuck = Stuck::Barrier;
                            break;
                        }
                    }
                    state[pi].cursor += 1;
                    progressed = true;
                }
            }
            // Barrier release mirrors the engine (and the lockstep loop):
            // *every* piece must be parked — a piece that ran out of ops
            // without a barrier never arrives at one, so its ranks hold any
            // remaining barrier closed forever.
            let parked = state.iter().filter(|s| s.stuck == Stuck::Barrier).count();
            if parked > 0 && parked == self.pieces.len() {
                for s in state.iter_mut().filter(|s| s.stuck == Stuck::Barrier) {
                    s.cursor += 1;
                    s.stuck = Stuck::Ready;
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        state.iter().any(|s| s.stuck != Stuck::Done)
    }
}

/// Direction of the rank-order induction a pipeline certificate runs.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Dir {
    /// Supply flows from lower to higher ranks (writer < reader).
    Asc,
    /// Supply flows from higher to lower ranks (writer > reader).
    Desc,
}

/// How one class-min-gated supply edge is justified inside a certificate.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EdgeCert {
    /// Every writer is outside the piece and individually past the
    /// producing op: available regardless of the class minimum.
    External,
    /// Some writers are ranks of the certified piece itself on the
    /// induction side: available by the induction hypothesis.
    Inductive,
    /// Not certifiable in this direction.
    No,
}

/// Per-key certificate supply: arrivals available under the induction
/// hypothesis, plus the largest inductively-supplied producing op.
struct CertSupply {
    avail: u64,
    inductive_op: Option<usize>,
}

/// The piece state a successful pipeline certificate commits back.
struct CertCommit {
    cursor: usize,
    consumed: HashMap<NotifyId, u64>,
    msgs_consumed: HashMap<(RankId, u32), u64>,
}

/// Recompute class `ci`'s minimum cursor and, if it advanced, wake the
/// pieces whose supply edges it newly satisfies (shared by the drain loop
/// and the certificate commit path).
#[allow(clippy::too_many_arguments)]
fn bump_class_min(
    classes: &[Class],
    state: &[PieceState],
    wake: &[Vec<(u32, u32)>],
    wake_ptr: &mut [usize],
    class_min: &mut [usize],
    queue: &mut VecDeque<usize>,
    in_queue: &mut [bool],
    ci: usize,
) {
    let new_min = classes[ci].piece_idx.iter().map(|&q| state[q].cursor).min().unwrap_or(usize::MAX);
    if new_min > class_min[ci] {
        class_min[ci] = new_min;
        let w = &wake[ci];
        let ptr = &mut wake_ptr[ci];
        while *ptr < w.len() && (w[*ptr].0 as usize) < new_min {
            let dep = w[*ptr].1 as usize;
            *ptr += 1;
            if !in_queue[dep] && !matches!(state[dep].stuck, Stuck::Done | Stuck::Barrier) {
                in_queue[dep] = true;
                queue.push_back(dep);
            }
        }
    }
}

/// Merge a supply edge into a sorted-by-(class, op) edge list, coalescing
/// duplicates (the same producing op reaching the same piece through two
/// wrapped intervals).
fn push_supply(srcs: &mut Vec<Supply>, s: Supply) {
    if let Some(last) = srcs.last_mut() {
        if last.class == s.class && last.op == s.op && last.code == s.code {
            last.count += s.count;
            return;
        }
    }
    srcs.push(s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn report(p: &Program) -> AnalysisReport {
        analyze(p).expect("test programs must validate")
    }

    #[test]
    fn ping_pong_is_clean() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 64, 1);
        b.wait_notify(1, &[1]);
        b.put_notify(1, 0, 64, 2);
        b.wait_notify(0, &[2]);
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
        assert!(r.is_deadlock_free());
    }

    #[test]
    fn uniform_ring_shift_is_two_pieces_and_clean() {
        // Every rank puts one chunk to its successor and waits for its
        // predecessor's: one shared delta segment, split into at most a
        // couple of supply-uniform pieces.
        let p = 64;
        let mut b = ProgramBuilder::new(p);
        for r in 0..p {
            b.put_notify(r, (r + 1) % p, 1024, 0);
            b.wait_notify(r, &[0]);
        }
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
        // Rank 0's targets also satisfy the xor coding, so it may land in
        // its own class; everything else shares one delta segment.
        assert!(r.classes <= 2, "expected O(1) classes, got {}", r.classes);
        assert!(r.pieces <= 3, "expected O(1) pieces, got {}", r.pieces);
        assert_eq!(r.num_ranks, p);
    }

    #[test]
    fn dropped_notify_is_starvation() {
        let mut b = ProgramBuilder::new(2);
        b.wait_notify(0, &[7]);
        b.compute(1, 1e-6);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(
                e,
                AnalysisError::Starvation { rank: 0, op_index: 0, id: 7, required: 1, produced: 0, .. }
            )),
            "{:?}",
            r.errors
        );
        assert!(!r.is_deadlock_free());
    }

    #[test]
    fn circular_waits_are_a_certain_deadlock() {
        // Each rank waits for the other's notify before issuing its own.
        let mut b = ProgramBuilder::new(2);
        b.wait_notify(0, &[0]);
        b.notify(0, 1, 1);
        b.wait_notify(1, &[1]);
        b.notify(1, 0, 0);
        let r = report(&b.build());
        let dead = r
            .errors
            .iter()
            .find_map(|e| match e {
                AnalysisError::Deadlock { blocked, certain } => Some((blocked.clone(), *certain)),
                _ => None,
            })
            .expect("deadlock must be reported");
        assert!(dead.1, "no partial any-waits: deadlock must be certain");
        assert_eq!(dead.0.len(), 2);
        assert!(!r.is_deadlock_free());
    }

    #[test]
    fn overproduced_notify_is_a_leak() {
        let mut b = ProgramBuilder::new(2);
        b.notify(0, 1, 3);
        b.notify(0, 1, 3);
        b.wait_notify(1, &[3]);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(
                e,
                AnalysisError::NotificationLeak { rank: 1, id: 3, produced: 2, consumable: 1, .. }
            )),
            "{:?}",
            r.errors
        );
        // A leak alone must not be misread as a hang.
        assert!(r.is_deadlock_free());
    }

    #[test]
    fn two_writers_one_slot_is_a_race() {
        let mut b = ProgramBuilder::new(3);
        b.put_notify(0, 2, 64, 5);
        b.put_notify(1, 2, 64, 5);
        b.wait_notify(2, &[5]);
        b.wait_notify(2, &[5]);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(e, AnalysisError::MultiWriterRace { rank: 2, id: 5, .. })),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn partial_any_wait_can_drain_a_later_wait() {
        let mut b = ProgramBuilder::new(2);
        b.notify(0, 1, 1);
        b.notify(0, 1, 2);
        b.wait_notify_any(1, &[1, 2], 1);
        b.wait_notify(1, &[2]);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(e, AnalysisError::ConsumptionRace { rank: 1, op_index: 1, id: 2, .. })),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn never_awaited_payload_is_flagged() {
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 64, 9);
        b.compute(1, 1e-6);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(e, AnalysisError::UnsyncedPayloadRead { rank: 1, id: 9, writer: 0, .. })),
            "{:?}",
            r.errors
        );
    }

    #[test]
    fn slot_reuse_without_ack_is_a_race_and_with_ack_is_clean() {
        // Unsynchronized: the second put can overwrite the unread first.
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 64, 0);
        b.put_notify(0, 1, 64, 0);
        b.wait_notify(1, &[0]);
        b.wait_notify(1, &[0]);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(
                e,
                AnalysisError::UnsyncedSlotReuse { writer: 0, rank: 1, id: 0, first_put: 0, second_put: 1, .. }
            )),
            "{:?}",
            r.errors
        );

        // Acknowledged: the reader confirms consumption before the reuse.
        let mut b = ProgramBuilder::new(2);
        b.put_notify(0, 1, 64, 0);
        b.wait_notify(0, &[8]);
        b.put_notify(0, 1, 64, 0);
        b.wait_notify(1, &[0]);
        b.notify(1, 0, 8);
        b.wait_notify(1, &[0]);
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
    }

    #[test]
    fn unmatched_barrier_is_a_deadlock() {
        let mut b = ProgramBuilder::new(2);
        b.barrier(0);
        b.compute(1, 1e-6);
        let r = report(&b.build());
        assert!(r.errors.iter().any(|e| matches!(e, AnalysisError::Deadlock { certain: true, .. })), "{:?}", r.errors);

        let mut b = ProgramBuilder::new(2);
        b.barrier_all();
        b.put_notify(0, 1, 64, 0);
        b.wait_notify(1, &[0]);
        b.barrier_all();
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
    }

    #[test]
    fn two_sided_order_reversal_is_a_deadlock() {
        // Both ranks receive before sending; channel counts match, so
        // validation passes, but no message can ever be produced.
        let mut b = ProgramBuilder::new(2);
        b.recv(0, 1, 64, 0);
        b.send(0, 1, 64, 0);
        b.recv(1, 0, 64, 0);
        b.send(1, 0, 64, 0);
        let r = report(&b.build());
        assert!(r.errors.iter().any(|e| matches!(e, AnalysisError::Deadlock { .. })), "{:?}", r.errors);

        // The same channels in a workable order are clean.
        let mut b = ProgramBuilder::new(2);
        b.send(0, 1, 64, 0);
        b.recv(0, 1, 64, 0);
        b.recv(1, 0, 64, 0);
        b.send(1, 0, 64, 0);
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
    }

    #[test]
    fn hypercube_exchange_is_one_class_and_clean() {
        // Classic dimension-exchange: every rank puts to rank^2^k and waits
        // on the partner's put, per dimension.  One xor class, one piece.
        let p = 32;
        let mut b = ProgramBuilder::new(p);
        for r in 0..p {
            for k in 0..5u32 {
                b.put_notify(r, r ^ (1 << k), 256, k);
                b.wait_notify(r, &[k]);
            }
        }
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
        assert_eq!(r.classes, 1, "xor coding must dedup all ranks into one class");
        assert_eq!(r.pieces, 1);
    }

    #[test]
    fn report_scales_with_segments_not_ranks() {
        // The same shifted-ring program at two very different rank counts
        // must produce identical class/piece structure.
        for p in [128usize, 8192] {
            let mut b = ProgramBuilder::new(p);
            for r in 0..p {
                b.put_notify(r, (r + 1) % p, 1024, 0);
                b.wait_notify(r, &[0]);
                b.put_notify(r, (r + 1) % p, 1024, 1);
                b.wait_notify(r, &[1]);
            }
            let r = report(&b.build());
            assert!(r.is_clean(), "p={p}: {:?}", r.errors);
            assert!(r.classes <= 2, "p={p}: {}", r.classes);
            assert!(r.pieces <= 3, "p={p}: {}", r.pieces);
        }
    }

    /// Rank 0 puts, rank r waits for r−1 and forwards, the last rank only
    /// waits: the middle ranks intern into one shared segment and drain
    /// rank by rank.  The lockstep quotient alone stalls here (no piece
    /// can take the first step as a unit); the ascending pipeline
    /// certificate must discharge it at any rank count.
    #[test]
    fn shared_segment_pipelined_chain_is_clean() {
        for p in [3usize, 8, 64, 1 << 14] {
            let mut b = ProgramBuilder::new(p);
            b.put_notify(0, 1, 64, 0);
            for r in 1..p - 1 {
                b.wait_notify(r, &[0]);
                b.put_notify(r, (r + 1) % p, 64, 0);
            }
            b.wait_notify(p - 1, &[0]);
            let r = report(&b.build());
            assert!(r.is_clean(), "p={p}: {:?}", r.errors);
            assert!(r.is_deadlock_free());
            assert!(r.classes <= 4, "p={p}: the middle ranks must share a segment, got {} classes", r.classes);
        }
    }

    /// The same chain flowing downward (rank p−1 puts, rank r waits for
    /// r+1 and forwards) exercises the descending induction.
    #[test]
    fn reversed_pipelined_chain_is_clean() {
        for p in [3usize, 8, 64] {
            let mut b = ProgramBuilder::new(p);
            b.put_notify(p - 1, p - 2, 64, 0);
            for r in (1..p - 1).rev() {
                b.wait_notify(r, &[0]);
                b.put_notify(r, r - 1, 64, 0);
            }
            b.wait_notify(0, &[0]);
            let r = report(&b.build());
            assert!(r.is_clean(), "p={p}: {:?}", r.errors);
            assert!(r.is_deadlock_free());
        }
    }

    /// A multi-stage pipeline: two forward chains back to back through the
    /// same shared segment.  The certificate must compose across stages.
    #[test]
    fn two_stage_pipelined_chain_is_clean() {
        let p = 16;
        let mut b = ProgramBuilder::new(p);
        b.put_notify(0, 1, 64, 0);
        b.put_notify(0, 1, 64, 1);
        for r in 1..p - 1 {
            b.wait_notify(r, &[0]);
            b.put_notify(r, r + 1, 64, 0);
            b.wait_notify(r, &[1]);
            b.put_notify(r, r + 1, 64, 1);
        }
        b.wait_notify(p - 1, &[0]);
        b.wait_notify(p - 1, &[1]);
        let r = report(&b.build());
        assert!(r.is_clean(), "{:?}", r.errors);
    }

    /// Closing the chain into a full ring where *every* rank waits before
    /// putting removes the base case: a genuine cycle.  The wrapped writer
    /// defeats both induction directions and even the over-approximating
    /// residual run cannot complete, so the deadlock stays `certain`.
    #[test]
    fn wait_first_full_ring_is_a_certain_deadlock() {
        let p = 8;
        let mut b = ProgramBuilder::new(p);
        for r in 0..p {
            b.wait_notify(r, &[0]);
            b.put_notify(r, (r + 1) % p, 64, 0);
        }
        let r = report(&b.build());
        assert!(r.errors.iter().any(|e| matches!(e, AnalysisError::Deadlock { certain: true, .. })), "{:?}", r.errors);
        assert!(!r.is_deadlock_free());
    }

    /// A partial any-wait in a piece that *completes* must not downgrade an
    /// unrelated deterministic deadlock to `certain: false`.
    #[test]
    fn partial_any_in_a_completed_piece_keeps_unrelated_deadlocks_certain() {
        let mut b = ProgramBuilder::new(4);
        // Ranks 0/1: deterministic circular wait.
        b.wait_notify(0, &[0]);
        b.notify(0, 1, 1);
        b.wait_notify(1, &[1]);
        b.notify(1, 0, 0);
        // Ranks 2/3: a partial any-wait that runs to completion.
        b.notify(2, 3, 5);
        b.notify(2, 3, 6);
        b.wait_notify_any(3, &[5, 6], 1);
        b.wait_notify(3, &[6]);
        let r = report(&b.build());
        let certain = r
            .errors
            .iter()
            .find_map(|e| match e {
                AnalysisError::Deadlock { certain, .. } => Some(*certain),
                _ => None,
            })
            .expect("ranks 0/1 deadlock");
        assert!(certain, "the any-wait's piece completed; the 0/1 cycle is order-independent: {:?}", r.errors);
    }

    /// The partial-any consumption race must name an id that is actually
    /// endangered (available under some order, drained in the worst case),
    /// not merely the first id of the wait's list.
    #[test]
    fn consumption_race_names_an_endangered_id() {
        let mut b = ProgramBuilder::new(2);
        b.notify(0, 1, 1);
        // Id 2 is listed first but never produced; only id 1 can be
        // drained from under the second any-wait.
        b.wait_notify_any(1, &[2, 1], 1);
        b.wait_notify_any(1, &[2, 1], 1);
        let r = report(&b.build());
        assert!(
            r.errors.iter().any(|e| matches!(e, AnalysisError::ConsumptionRace { rank: 1, op_index: 1, id: 1, .. })),
            "{:?}",
            r.errors
        );
    }

    /// The xor branch of `receiver_intervals` must cover exactly the
    /// per-rank image for arbitrary sub-intervals — in O(log p) aligned
    /// blocks, not O(p) singletons.
    #[test]
    fn xor_receiver_intervals_match_per_rank_enumeration() {
        let n = 64;
        let mut out = Vec::new();
        for &(lo, hi) in &[(0usize, 64usize), (3, 8), (5, 37), (17, 18), (0, 48), (31, 63)] {
            for code in 1..n as u32 {
                out.clear();
                receiver_intervals(lo, hi, code, TargetMode::Xor, n, &mut out);
                assert!(
                    out.len() <= 2 * usize::BITS as usize,
                    "[{lo},{hi}) code {code}: {} intervals is not O(log p)",
                    out.len()
                );
                let mut got: Vec<usize> = out.iter().flat_map(|&(a, b)| a..b).collect();
                got.sort_unstable();
                let mut want: Vec<usize> = (lo..hi).map(|r| r ^ code as usize).collect();
                want.sort_unstable();
                assert_eq!(got, want, "[{lo},{hi}) code {code}");
            }
        }
    }
}
