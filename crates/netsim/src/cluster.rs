//! Cluster description: nodes, ranks-per-node placement and cluster presets.
//!
//! The paper evaluates on three clusters (SkyLake/FDR InfiniBand at
//! Fraunhofer ITWM, MareNostrum4/OmniPath at BSC, Galileo/OmniPath at
//! CINECA).  A [`ClusterSpec`] captures the placement side of that — how many
//! nodes exist and how ranks are mapped onto them — while the timing side
//! lives in [`crate::cost::CostModel`].

/// Identifier of a rank (process) participating in a collective.
pub type RankId = usize;

/// Identifier of a physical node in the cluster.
pub type NodeId = usize;

/// Static description of the simulated cluster.
///
/// A cluster is a set of `nodes` physical nodes; ranks are placed onto nodes
/// in a block fashion (`ranks_per_node` consecutive ranks share a node), which
/// matches how the paper launches jobs ("we assign one GASPI process per node
/// unless otherwise mentioned"; the AlltoAll experiment uses four per node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of physical nodes.
    pub nodes: usize,
    /// Number of ranks placed on each node.
    pub ranks_per_node: usize,
    /// Human-readable name used in reports (e.g. `"skylake-fdr"`).
    pub name: String,
}

impl ClusterSpec {
    /// A cluster with `nodes` nodes and `ranks_per_node` ranks on each node.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn homogeneous(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        assert!(ranks_per_node > 0, "need at least one rank per node");
        Self { nodes, ranks_per_node, name: format!("{nodes}x{ranks_per_node}") }
    }

    /// Same as [`ClusterSpec::homogeneous`] but with an explicit name.
    pub fn named(name: impl Into<String>, nodes: usize, ranks_per_node: usize) -> Self {
        let mut spec = Self::homogeneous(nodes, ranks_per_node);
        spec.name = name.into();
        spec
    }

    /// Total number of ranks in the job.
    pub fn total_ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// The node that hosts `rank`.
    ///
    /// Ranks are placed in blocks: ranks `0..ranks_per_node` live on node 0,
    /// the next `ranks_per_node` on node 1 and so on.
    pub fn node_of(&self, rank: RankId) -> NodeId {
        debug_assert!(rank < self.total_ranks(), "rank {rank} out of range");
        rank / self.ranks_per_node
    }

    /// Whether two ranks are placed on the same physical node.
    pub fn same_node(&self, a: RankId, b: RankId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterator over all rank ids.
    pub fn ranks(&self) -> impl Iterator<Item = RankId> {
        0..self.total_ranks()
    }

    /// The ranks hosted on `node`.
    pub fn ranks_on_node(&self, node: NodeId) -> impl Iterator<Item = RankId> {
        let start = node * self.ranks_per_node;
        start..start + self.ranks_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_maps_ranks_to_nodes() {
        let c = ClusterSpec::homogeneous(4, 3);
        assert_eq!(c.total_ranks(), 12);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(2), 0);
        assert_eq!(c.node_of(3), 1);
        assert_eq!(c.node_of(11), 3);
        assert!(c.same_node(3, 5));
        assert!(!c.same_node(2, 3));
    }

    #[test]
    fn one_rank_per_node_is_identity() {
        let c = ClusterSpec::homogeneous(8, 1);
        for r in c.ranks() {
            assert_eq!(c.node_of(r), r);
        }
    }

    #[test]
    fn ranks_on_node_enumerates_block() {
        let c = ClusterSpec::homogeneous(3, 4);
        let on1: Vec<_> = c.ranks_on_node(1).collect();
        assert_eq!(on1, vec![4, 5, 6, 7]);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        let _ = ClusterSpec::homogeneous(0, 1);
    }

    #[test]
    fn named_preserves_geometry() {
        let c = ClusterSpec::named("galileo", 16, 4);
        assert_eq!(c.name, "galileo");
        assert_eq!(c.total_ranks(), 64);
    }
}
