//! Symbolic SPMD twins of the baseline MPI schedules.
//!
//! Like their GASPI counterparts in `ec_collectives::schedule::source`, these
//! implement [`ec_netsim::ProgramSource`] so the per-rank op streams are
//! produced lazily in closed form — `O(ops_per_rank)` instead of the
//! `O(P * ops_per_rank)` the materialized generators pay — and the arena
//! interning of `ec_netsim::CompiledProgram::from_source` collapses identical
//! rank streams into shared storage.

use ec_netsim::{Op, ProgramSource};

use super::trees::binomial;

/// Lazy per-rank generator of the binomial-tree `MPI_Bcast` — the symbolic
/// twin of [`super::bcast::mpi_bcast_binomial_schedule`].
#[derive(Debug, Clone, Copy)]
pub struct BinomialBcastSource {
    ranks: usize,
    total_bytes: u64,
}

impl BinomialBcastSource {
    /// A binomial broadcast of `total_bytes` from rank 0 across `ranks`.
    pub fn new(ranks: usize, total_bytes: u64) -> Self {
        Self { ranks, total_bytes }
    }
}

impl ProgramSource for BinomialBcastSource {
    fn num_ranks(&self) -> usize {
        self.ranks
    }

    fn rank_ops(&self, rank: usize, out: &mut Vec<Op>) {
        if self.ranks <= 1 {
            return;
        }
        let (parent, children) = binomial(rank, self.ranks);
        if let Some(parent) = parent {
            out.push(Op::Recv { src: parent, bytes: self.total_bytes, tag: 0 });
        }
        for child in children {
            out.push(Op::Send { dst: child, bytes: self.total_bytes, tag: 0 });
        }
    }
}

/// Lazy per-rank generator of the pairwise-exchange `MPI_Alltoall` — the
/// symbolic twin of [`super::alltoall::mpi_alltoall_pairwise_schedule`].
#[derive(Debug, Clone, Copy)]
pub struct PairwiseAlltoallSource {
    ranks: usize,
    block_bytes: u64,
}

impl PairwiseAlltoallSource {
    /// A pairwise alltoall of `block_bytes` per rank pair across `ranks`.
    pub fn new(ranks: usize, block_bytes: u64) -> Self {
        Self { ranks, block_bytes }
    }
}

impl ProgramSource for PairwiseAlltoallSource {
    fn num_ranks(&self) -> usize {
        self.ranks
    }

    fn rank_ops(&self, rank: usize, out: &mut Vec<Op>) {
        if self.ranks <= 1 {
            return;
        }
        for step in 1..self.ranks {
            let dst = (rank + step) % self.ranks;
            let src = (rank + self.ranks - step) % self.ranks;
            let tag = step as u32;
            out.push(Op::Isend { dst, bytes: self.block_bytes, tag });
            out.push(Op::Recv { src, bytes: self.block_bytes, tag });
        }
        out.push(Op::WaitAllSends);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::alltoall::mpi_alltoall_pairwise_schedule;
    use crate::schedule::bcast::mpi_bcast_binomial_schedule;
    use ec_netsim::CompiledProgram;

    fn ops_of<S: ProgramSource>(source: &S, rank: usize) -> Vec<Op> {
        let mut out = Vec::new();
        source.rank_ops(rank, &mut out);
        out
    }

    #[test]
    fn bcast_source_matches_the_materialized_schedule_rank_for_rank() {
        for (p, bytes) in [(1usize, 100u64), (2, 4096), (8, 80_000), (13, 999)] {
            let program = mpi_bcast_binomial_schedule(p, bytes);
            let source = BinomialBcastSource::new(p, bytes);
            assert_eq!(source.num_ranks(), p);
            for rank in 0..p {
                assert_eq!(ops_of(&source, rank), program.ranks[rank].ops, "p={p} bytes={bytes} rank={rank}");
            }
        }
    }

    #[test]
    fn alltoall_source_matches_the_materialized_schedule_rank_for_rank() {
        for (p, block) in [(1usize, 100u64), (2, 4096), (16, 8192), (7, 1024)] {
            let program = mpi_alltoall_pairwise_schedule(p, block);
            let source = PairwiseAlltoallSource::new(p, block);
            for rank in 0..p {
                assert_eq!(ops_of(&source, rank), program.ranks[rank].ops, "p={p} block={block} rank={rank}");
            }
        }
    }

    #[test]
    fn alltoall_source_compiles_with_full_interning() {
        // Every rank of the pairwise exchange runs the same stream modulo
        // rank rotation, which the delta coding normalizes away completely.
        let p = 256;
        let compiled = CompiledProgram::from_source(&PairwiseAlltoallSource::new(p, 4096)).unwrap();
        let per_rank = (compiled.total_ops() / p as u64) as usize;
        assert_eq!(compiled.memory_stats().stored_ops, per_rank, "all ranks must share one arena segment");
    }
}
