//! Schedules for the twelve `MPI_Allreduce` algorithm variants the paper
//! compares against in Figures 11–12.
//!
//! The variant numbering and naming follows the caption of Figure 11:
//! `mpi1` recursive doubling, `mpi2` Rabenseifner, `mpi3` reduce + bcast,
//! `mpi4` topology-aware reduce + bcast, `mpi5` binomial gather + scatter,
//! `mpi6` topology-aware binomial gather + scatter, `mpi7` Shumilin's ring,
//! `mpi8` ring, `mpi9` knomial, `mpi10` topology-aware SHM-based flat,
//! `mpi11` topology-aware SHM-based knomial, `mpi12` topology-aware
//! SHM-based knary.

use ec_netsim::{Program, ProgramBuilder};

use super::bcast::subtree_bytes;
use super::trees::{binomial, flat, knary, knomial};

/// The twelve Intel-MPI Allreduce algorithm variants of Figures 11–12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiAllreduceVariant {
    /// `mpi1`: recursive doubling.
    RecursiveDoubling,
    /// `mpi2`: Rabenseifner (reduce-scatter + allgather).
    Rabenseifner,
    /// `mpi3`: binomial reduce followed by binomial broadcast.
    ReduceBcast,
    /// `mpi4`: topology-aware reduce followed by broadcast (node leaders
    /// reduce intra-node first).
    TopoReduceBcast,
    /// `mpi5`: binomial gather of all vectors to the root + broadcast.
    BinomialGatherScatter,
    /// `mpi6`: topology-aware binomial gather + broadcast.
    TopoGatherScatter,
    /// `mpi7`: Shumilin's ring (pipelined reduce-scatter + allgather).
    ShumilinRing,
    /// `mpi8`: ring with phase synchronization.
    Ring,
    /// `mpi9`: knomial (radix 4) reduce + broadcast.
    Knomial,
    /// `mpi10`: topology-aware SHM-based flat tree.
    TopoShmFlat,
    /// `mpi11`: topology-aware SHM-based knomial (radix 8).
    TopoShmKnomial,
    /// `mpi12`: topology-aware SHM-based knary (arity 3).
    TopoShmKnary,
}

impl MpiAllreduceVariant {
    /// All twelve variants in the order of the paper's legend.
    pub fn all() -> [MpiAllreduceVariant; 12] {
        use MpiAllreduceVariant::*;
        [
            RecursiveDoubling,
            Rabenseifner,
            ReduceBcast,
            TopoReduceBcast,
            BinomialGatherScatter,
            TopoGatherScatter,
            ShumilinRing,
            Ring,
            Knomial,
            TopoShmFlat,
            TopoShmKnomial,
            TopoShmKnary,
        ]
    }

    /// The legend label used in the paper's plots (`mpi1` .. `mpi12`).
    pub fn label(self) -> &'static str {
        use MpiAllreduceVariant::*;
        match self {
            RecursiveDoubling => "mpi1-recursive-doubling",
            Rabenseifner => "mpi2-rabenseifner",
            ReduceBcast => "mpi3-reduce-bcast",
            TopoReduceBcast => "mpi4-topo-reduce-bcast",
            BinomialGatherScatter => "mpi5-binomial-gather-scatter",
            TopoGatherScatter => "mpi6-topo-gather-scatter",
            ShumilinRing => "mpi7-shumilin-ring",
            Ring => "mpi8-ring",
            Knomial => "mpi9-knomial",
            TopoShmFlat => "mpi10-shm-flat",
            TopoShmKnomial => "mpi11-shm-knomial",
            TopoShmKnary => "mpi12-shm-knary",
        }
    }

    /// Build this variant's schedule for `ranks` ranks reducing `total_bytes`
    /// bytes, with `ranks_per_node` ranks sharing each node (used by the
    /// topology-aware variants).
    pub fn schedule(self, ranks: usize, total_bytes: u64, ranks_per_node: usize) -> Program {
        use MpiAllreduceVariant::*;
        let bytes = total_bytes.max(1);
        match self {
            RecursiveDoubling => recursive_doubling(ranks, bytes),
            Rabenseifner => rabenseifner(ranks, bytes),
            ReduceBcast => tree_reduce_bcast(ranks, bytes, binomial),
            TopoReduceBcast => hierarchical(ranks, bytes, ranks_per_node, |r, n| tree_reduce_bcast(r, n, binomial)),
            BinomialGatherScatter => gather_scatter(ranks, bytes),
            TopoGatherScatter => hierarchical(ranks, bytes, ranks_per_node, gather_scatter),
            ShumilinRing => ring(ranks, bytes, false),
            Ring => ring(ranks, bytes, true),
            Knomial => tree_reduce_bcast(ranks, bytes, |r, n| knomial(r, n, 4)),
            TopoShmFlat => hierarchical(ranks, bytes, ranks_per_node, |r, n| tree_reduce_bcast(r, n, flat)),
            TopoShmKnomial => {
                hierarchical(ranks, bytes, ranks_per_node, |r, n| tree_reduce_bcast(r, n, |a, b| knomial(a, b, 8)))
            }
            TopoShmKnary => {
                hierarchical(ranks, bytes, ranks_per_node, |r, n| tree_reduce_bcast(r, n, |a, b| knary(a, b, 3)))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// building blocks
// ---------------------------------------------------------------------------

/// Fold ranks beyond the largest power of two into the lower ranks, run
/// `inner` over the power-of-two sub-world, then unfold the result.
fn power_of_two_wrapper(ranks: usize, bytes: u64, inner: impl Fn(&mut ProgramBuilder, usize, u64)) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    if ranks == 0 {
        return b.build();
    }
    let p2 = if ranks.is_power_of_two() { ranks } else { usize::pow(2, (ranks as f64).log2().floor() as u32) };
    let extras = ranks - p2;
    // Pre-fold: ranks p2..ranks hand their contribution to ranks 0..extras.
    for i in 0..extras {
        let src = p2 + i;
        b.send(src, i, bytes, 90);
        b.recv(i, src, bytes, 90);
        b.reduce(i, bytes);
    }
    inner(&mut b, p2, bytes);
    // Post-fold: the folded ranks receive the final result.
    for i in 0..extras {
        let dst = p2 + i;
        b.send(i, dst, bytes, 91);
        b.recv(dst, i, bytes, 91);
    }
    b.build()
}

/// `mpi1`: recursive doubling — `log2(P)` full-vector exchanges.
fn recursive_doubling(ranks: usize, bytes: u64) -> Program {
    power_of_two_wrapper(ranks, bytes, |b, p2, bytes| {
        let mut step = 1usize;
        let mut tag = 0u32;
        while step < p2 {
            for rank in 0..p2 {
                let partner = rank ^ step;
                b.isend(rank, partner, bytes, tag);
                b.recv(rank, partner, bytes, tag);
                b.reduce(rank, bytes);
            }
            step <<= 1;
            tag += 1;
        }
        for rank in 0..p2 {
            b.wait_all_sends(rank);
        }
    })
}

/// `mpi2`: Rabenseifner — recursive-halving reduce-scatter followed by a
/// recursive-doubling allgather.
fn rabenseifner(ranks: usize, bytes: u64) -> Program {
    power_of_two_wrapper(ranks, bytes, |b, p2, bytes| {
        if p2 <= 1 {
            return;
        }
        let d = p2.trailing_zeros();
        // Reduce-scatter by recursive halving.
        for rank in 0..p2 {
            let mut window = bytes;
            for k in 0..d {
                let distance = p2 >> (k + 1);
                let partner = rank ^ distance;
                window = (window / 2).max(1);
                let tag = 10 + k;
                b.isend(rank, partner, window, tag);
                b.recv(rank, partner, window, tag);
                b.reduce(rank, window);
            }
            b.wait_all_sends(rank);
        }
        // Allgather by recursive doubling (windows grow back).
        for rank in 0..p2 {
            let mut window = (bytes / p2 as u64).max(1);
            for k in 0..d {
                let distance = 1usize << k;
                let partner = rank ^ distance;
                let tag = 30 + k;
                b.isend(rank, partner, window, tag);
                b.recv(rank, partner, window, tag);
                window *= 2;
            }
            b.wait_all_sends(rank);
        }
    })
}

/// Reduce to rank 0 over an arbitrary tree shape, then broadcast the result
/// back down the same tree (used for `mpi3`, `mpi9` and the SHM variants).
fn tree_reduce_bcast(ranks: usize, bytes: u64, shape: impl Fn(usize, usize) -> (Option<usize>, Vec<usize>)) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    build_tree_reduce_bcast(&mut b, &(0..ranks).collect::<Vec<_>>(), bytes, &shape);
    b.build()
}

/// Shared helper: run a reduce + broadcast over the `members` ranks (indexed
/// positionally by the tree shape).
fn build_tree_reduce_bcast(
    b: &mut ProgramBuilder,
    members: &[usize],
    bytes: u64,
    shape: &impl Fn(usize, usize) -> (Option<usize>, Vec<usize>),
) {
    let m = members.len();
    if m <= 1 {
        return;
    }
    // Reduce phase (children -> parent).
    for (idx, &rank) in members.iter().enumerate() {
        let (parent, children) = shape(idx, m);
        for child in children.iter().rev() {
            b.recv(rank, members[*child], bytes, 60);
            b.reduce(rank, bytes);
        }
        if let Some(parent) = parent {
            b.send(rank, members[parent], bytes, 60);
        }
    }
    // Broadcast phase (parent -> children).
    for (idx, &rank) in members.iter().enumerate() {
        let (parent, children) = shape(idx, m);
        if let Some(parent) = parent {
            b.recv(rank, members[parent], bytes, 61);
        }
        for child in children {
            b.send(rank, members[child], bytes, 61);
        }
    }
}

/// `mpi5`: gather every rank's full vector to the root along a binomial tree
/// (messages grow with the subtree size), reduce at the root, broadcast back.
fn gather_scatter(ranks: usize, bytes: u64) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    if ranks <= 1 {
        return b.build();
    }
    for rank in 0..ranks {
        let (parent, children) = binomial(rank, ranks);
        for child in children.iter().rev() {
            b.recv(rank, *child, subtree_bytes(*child, ranks, bytes), 70);
        }
        if let Some(parent) = parent {
            b.send(rank, parent, subtree_bytes(rank, ranks, bytes), 70);
        }
        if rank == 0 {
            // The root reduces the P-1 gathered vectors.
            b.reduce(rank, bytes * (ranks as u64 - 1));
        }
    }
    // Broadcast of the result.
    for rank in 0..ranks {
        let (parent, children) = binomial(rank, ranks);
        if let Some(parent) = parent {
            b.recv(rank, parent, bytes, 71);
        }
        for child in children {
            b.send(rank, child, bytes, 71);
        }
    }
    b.build()
}

/// `mpi7`/`mpi8`: ring allreduce (reduce-scatter + allgather).  The plain
/// `Ring` variant adds a barrier after each phase — the global
/// synchronization the paper's GASPI implementation eliminates.
fn ring(ranks: usize, bytes: u64, phase_barriers: bool) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    if ranks <= 1 {
        return b.build();
    }
    let chunk = (bytes / ranks as u64).max(1);
    for rank in 0..ranks {
        let next = (rank + 1) % ranks;
        let prev = (rank + ranks - 1) % ranks;
        for step in 0..ranks - 1 {
            let tag = step as u32;
            b.isend(rank, next, chunk, tag);
            b.recv(rank, prev, chunk, tag);
            b.reduce(rank, chunk);
        }
        b.wait_all_sends(rank);
    }
    if phase_barriers {
        b.barrier_all();
    }
    for rank in 0..ranks {
        let next = (rank + 1) % ranks;
        let prev = (rank + ranks - 1) % ranks;
        for step in 0..ranks - 1 {
            let tag = 1000 + step as u32;
            b.isend(rank, next, chunk, tag);
            b.recv(rank, prev, chunk, tag);
        }
        b.wait_all_sends(rank);
    }
    if phase_barriers {
        b.barrier_all();
    }
    b.build()
}

/// Wrap an allreduce over the node leaders with an intra-node reduce before
/// and an intra-node broadcast after (the "topology aware" / SHM variants).
fn hierarchical(
    ranks: usize,
    bytes: u64,
    ranks_per_node: usize,
    leader_allreduce: impl Fn(usize, u64) -> Program,
) -> Program {
    let ppn = ranks_per_node.max(1);
    if ppn == 1 || !ranks.is_multiple_of(ppn) {
        // One rank per node (or irregular placement): nothing hierarchical
        // about it — run the leader algorithm over everyone.
        return leader_allreduce(ranks, bytes);
    }
    let nodes = ranks / ppn;
    let mut b = ProgramBuilder::new(ranks);
    // Phase 1: intra-node reduce to the node leader (first rank on the node).
    for node in 0..nodes {
        let leader = node * ppn;
        for local in 1..ppn {
            let rank = leader + local;
            b.send(rank, leader, bytes, 80);
            b.recv(leader, rank, bytes, 80);
            b.reduce(leader, bytes);
        }
    }
    // Phase 2: allreduce across the node leaders.
    let leaders: Vec<usize> = (0..nodes).map(|n| n * ppn).collect();
    let leader_prog = leader_allreduce(nodes, bytes);
    for (node, rank_prog) in leader_prog.ranks.into_iter().enumerate() {
        for op in rank_prog.ops {
            // Remap the leader-world rank ids onto the real leader ranks.
            let remapped = remap_op(op, &leaders);
            b_push(&mut b, leaders[node], remapped);
        }
    }
    // Phase 3: intra-node broadcast of the result.
    for node in 0..nodes {
        let leader = node * ppn;
        for local in 1..ppn {
            let rank = leader + local;
            b.send(leader, rank, bytes, 81);
            b.recv(rank, leader, bytes, 81);
        }
    }
    b.build()
}

/// Remap rank references inside an op from leader-world ids to real ranks.
fn remap_op(op: ec_netsim::Op, leaders: &[usize]) -> ec_netsim::Op {
    use ec_netsim::Op::*;
    match op {
        PutNotify { dst, bytes, notify } => PutNotify { dst: leaders[dst], bytes, notify },
        Notify { dst, notify } => Notify { dst: leaders[dst], notify },
        Send { dst, bytes, tag } => Send { dst: leaders[dst], bytes, tag },
        Isend { dst, bytes, tag } => Isend { dst: leaders[dst], bytes, tag },
        Recv { src, bytes, tag } => Recv { src: leaders[src], bytes, tag },
        other => other,
    }
}

fn b_push(b: &mut ProgramBuilder, rank: usize, op: ec_netsim::Op) {
    use ec_netsim::Op::*;
    match op {
        Compute { seconds } => {
            b.compute(rank, seconds);
        }
        Reduce { bytes } => {
            b.reduce(rank, bytes);
        }
        Copy { bytes } => {
            b.copy(rank, bytes);
        }
        PutNotify { dst, bytes, notify } => {
            b.put_notify(rank, dst, bytes, notify);
        }
        Notify { dst, notify } => {
            b.notify(rank, dst, notify);
        }
        WaitNotify { ids } => {
            b.wait_notify(rank, &ids);
        }
        WaitNotifyAny { ids, count } => {
            b.wait_notify_any(rank, &ids, count);
        }
        Send { dst, bytes, tag } => {
            b.send(rank, dst, bytes, tag);
        }
        Isend { dst, bytes, tag } => {
            b.isend(rank, dst, bytes, tag);
        }
        Recv { src, bytes, tag } => {
            b.recv(rank, src, bytes, tag);
        }
        WaitAllSends => {
            b.wait_all_sends(rank);
        }
        Barrier => {
            b.barrier(rank);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_netsim::{validate, ClusterSpec, CostModel, Engine};

    fn makespan(variant: MpiAllreduceVariant, p: usize, bytes: u64) -> f64 {
        let prog = variant.schedule(p, bytes, 1);
        validate(&prog, p).unwrap();
        Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr()).makespan(&prog).unwrap()
    }

    #[test]
    fn labels_are_unique_and_follow_the_paper_numbering() {
        let labels: Vec<_> = MpiAllreduceVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 12);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 12);
        assert_eq!(MpiAllreduceVariant::RecursiveDoubling.label(), "mpi1-recursive-doubling");
        assert_eq!(MpiAllreduceVariant::TopoShmKnary.label(), "mpi12-shm-knary");
    }

    #[test]
    fn recursive_doubling_beats_ring_for_small_messages() {
        let small = 800; // 100 doubles
        let rd = makespan(MpiAllreduceVariant::RecursiveDoubling, 32, small);
        let ring = makespan(MpiAllreduceVariant::Ring, 32, small);
        assert!(rd < ring, "recursive doubling ({rd}) should win at small sizes vs ring ({ring})");
    }

    #[test]
    fn ring_variants_beat_gather_based_variants_for_large_messages() {
        let large = 8_000_000;
        let shumilin = makespan(MpiAllreduceVariant::ShumilinRing, 32, large);
        let gather = makespan(MpiAllreduceVariant::BinomialGatherScatter, 32, large);
        let flat = makespan(MpiAllreduceVariant::TopoShmFlat, 32, large);
        assert!(shumilin < gather);
        assert!(shumilin < flat);
    }

    #[test]
    fn shumilin_is_at_least_as_fast_as_the_synchronized_ring() {
        let large = 8_000_000;
        let shumilin = makespan(MpiAllreduceVariant::ShumilinRing, 32, large);
        let ring = makespan(MpiAllreduceVariant::Ring, 32, large);
        assert!(shumilin <= ring * 1.001, "Shumilin ({shumilin}) must not lose to the barrier ring ({ring})");
    }

    #[test]
    fn rabenseifner_moves_less_data_than_recursive_doubling() {
        let p = 16;
        let bytes = 1_000_000;
        let rd = MpiAllreduceVariant::RecursiveDoubling.schedule(p, bytes, 1).total_wire_bytes();
        let rab = MpiAllreduceVariant::Rabenseifner.schedule(p, bytes, 1).total_wire_bytes();
        assert!(rab < rd, "Rabenseifner ({rab} B) must move less than recursive doubling ({rd} B)");
    }

    #[test]
    fn hierarchical_variants_differ_from_flat_ones_when_nodes_share_ranks() {
        let p = 16;
        let ppn = 4;
        let bytes = 100_000;
        let flat_prog = MpiAllreduceVariant::ReduceBcast.schedule(p, bytes, 1);
        let hier_prog = MpiAllreduceVariant::TopoReduceBcast.schedule(p, bytes, ppn);
        validate(&hier_prog, p).unwrap();
        // Same total traffic (P-1 vectors each way) but a different structure:
        // the hierarchical variant funnels inter-node traffic through leaders.
        assert_ne!(flat_prog, hier_prog);
        let e = Engine::new(ClusterSpec::homogeneous(p / ppn, ppn), CostModel::skylake_fdr());
        assert!(e.makespan(&hier_prog).unwrap() > 0.0);
    }

    #[test]
    fn every_variant_handles_two_ranks() {
        for v in MpiAllreduceVariant::all() {
            let prog = v.schedule(2, 1000, 1);
            validate(&prog, 2).unwrap();
            let t = Engine::new(ClusterSpec::homogeneous(2, 1), CostModel::test_model()).makespan(&prog).unwrap();
            assert!(t >= 0.0, "{v:?}");
        }
    }
}
