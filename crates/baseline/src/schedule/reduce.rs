//! Schedules for `MPI_Reduce`: binomial and size-adaptive default variants.

use ec_netsim::{Program, ProgramBuilder};

use super::trees::binomial;

/// Message size (bytes) above which the default reduce switches from the
/// binomial tree to Rabenseifner's reduce-scatter + gather algorithm.
const LARGE_REDUCE_THRESHOLD: u64 = 64 * 1024;

/// Binomial-tree `MPI_Reduce` towards rank 0 (the `mpi-bin` curve of Figure 9).
pub fn mpi_reduce_binomial_schedule(ranks: usize, total_bytes: u64) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    if ranks <= 1 {
        return b.build();
    }
    for rank in 0..ranks {
        let (parent, children) = binomial(rank, ranks);
        // Children deeper in the tree finish first; a parent receives and
        // reduces one contribution per child.
        for child in children.iter().rev() {
            b.recv(rank, *child, total_bytes, 0);
            b.reduce(rank, total_bytes);
        }
        if let Some(parent) = parent {
            b.send(rank, parent, total_bytes, 0);
        }
    }
    b.build()
}

/// Size-adaptive "default" `MPI_Reduce` (the `mpi-def` curve of Figure 9):
/// binomial for small payloads, reduce-scatter + binomial gather
/// (Rabenseifner) for large ones.
pub fn mpi_reduce_default_schedule(ranks: usize, total_bytes: u64) -> Program {
    if total_bytes <= LARGE_REDUCE_THRESHOLD || !ranks.is_power_of_two() || ranks <= 2 {
        return mpi_reduce_binomial_schedule(ranks, total_bytes);
    }
    rabenseifner_reduce(ranks, total_bytes)
}

/// Rabenseifner's reduce: recursive-halving reduce-scatter, then a binomial
/// gather of the scattered pieces to the root.
fn rabenseifner_reduce(ranks: usize, total_bytes: u64) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    let d = ranks.trailing_zeros();
    for rank in 0..ranks {
        // Reduce-scatter by recursive halving: in step k each rank exchanges
        // half of its current working window with a partner at distance
        // ranks / 2^(k+1).
        let mut window = total_bytes;
        for k in 0..d {
            let distance = ranks >> (k + 1);
            let partner = rank ^ distance;
            window /= 2;
            let tag = 10 + k;
            b.isend(rank, partner, window.max(1), tag);
            b.recv(rank, partner, window.max(1), tag);
            b.reduce(rank, window.max(1));
        }
        b.wait_all_sends(rank);
        // Binomial gather of the scattered, fully reduced pieces to rank 0.
        let (parent, children) = binomial(rank, ranks);
        let piece = (total_bytes / ranks as u64).max(1);
        for child in children {
            // A child forwards its own piece plus its subtree's pieces.
            let subtree = super::bcast::subtree_bytes(child, ranks, piece);
            b.recv(rank, child, subtree, 50);
        }
        if let Some(parent) = parent {
            let subtree = super::bcast::subtree_bytes(rank, ranks, piece);
            b.send(rank, parent, subtree, 50);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_netsim::{validate, ClusterSpec, CostModel, Engine};

    #[test]
    fn binomial_reduce_moves_p_minus_1_vectors() {
        let p = 8;
        let prog = mpi_reduce_binomial_schedule(p, 1000);
        validate(&prog, p).unwrap();
        assert_eq!(prog.total_wire_bytes(), 7 * 1000);
    }

    #[test]
    fn default_reduce_uses_less_bandwidth_at_the_root_for_large_payloads() {
        let p = 32;
        let bytes = 8_000_000;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
        let t_bin = e.makespan(&mpi_reduce_binomial_schedule(p, bytes)).unwrap();
        let t_def = e.makespan(&mpi_reduce_default_schedule(p, bytes)).unwrap();
        assert!(t_def < t_bin, "Rabenseifner ({t_def}) must beat binomial ({t_bin}) for large payloads");
    }

    #[test]
    fn default_reduce_falls_back_to_binomial_for_small_or_odd_worlds() {
        assert_eq!(
            mpi_reduce_default_schedule(6, 1_000_000).total_wire_bytes(),
            mpi_reduce_binomial_schedule(6, 1_000_000).total_wire_bytes()
        );
        assert_eq!(
            mpi_reduce_default_schedule(8, 100).total_wire_bytes(),
            mpi_reduce_binomial_schedule(8, 100).total_wire_bytes()
        );
    }

    #[test]
    fn schedules_simulate_cleanly() {
        let e = Engine::new(ClusterSpec::homogeneous(16, 1), CostModel::test_model());
        for prog in [mpi_reduce_binomial_schedule(16, 10_000), mpi_reduce_default_schedule(16, 1_000_000)] {
            validate(&prog, 16).unwrap();
            assert!(e.makespan(&prog).unwrap() > 0.0);
        }
    }
}
