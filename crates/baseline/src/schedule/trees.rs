//! Tree shapes shared by the baseline schedule generators.

/// Parent and children of `rank` in a binomial tree rooted at 0.
pub fn binomial(rank: usize, ranks: usize) -> (Option<usize>, Vec<usize>) {
    if ranks <= 1 {
        return (None, Vec::new());
    }
    let parent = if rank == 0 {
        None
    } else {
        let highest = usize::BITS - 1 - rank.leading_zeros();
        Some(rank & !(1 << highest))
    };
    let mut children = Vec::new();
    let mut bit = 1usize;
    while bit < ranks {
        if bit > rank && rank + bit < ranks {
            children.push(rank + bit);
        }
        bit <<= 1;
    }
    (parent, children)
}

/// Parent and children of `rank` in a k-nomial tree of the given `radix`
/// rooted at 0 (radix 2 degenerates to the binomial tree).
pub fn knomial(rank: usize, ranks: usize, radix: usize) -> (Option<usize>, Vec<usize>) {
    assert!(radix >= 2);
    if ranks <= 1 {
        return (None, Vec::new());
    }
    // Digits of `rank` in base `radix`: the parent clears the most
    // significant non-zero digit; children set a more significant digit.
    let mut parent = None;
    if rank != 0 {
        let mut place = 1usize;
        let mut msd_place = 1usize;
        let mut r = rank;
        while r > 0 {
            if !r.is_multiple_of(radix) {
                msd_place = place;
            }
            r /= radix;
            place *= radix;
        }
        let digit = (rank / msd_place) % radix;
        parent = Some(rank - digit * msd_place);
    }
    let mut children = Vec::new();
    // The most significant non-zero digit place of `rank` (1 for rank 0).
    let mut limit = 1usize;
    if rank != 0 {
        let mut place = 1usize;
        let mut r = rank;
        while r > 0 {
            if !r.is_multiple_of(radix) {
                limit = place * radix;
            }
            r /= radix;
            place *= radix;
        }
    }
    let mut place = limit;
    while place < ranks {
        for d in 1..radix {
            let child = rank + d * place;
            if child < ranks && (rank != 0 || place >= 1) {
                children.push(child);
            }
        }
        place *= radix;
    }
    children.retain(|&c| c < ranks);
    children.sort_unstable();
    (parent, children)
}

/// Parent and children of `rank` in a complete k-ary tree (every internal
/// node has up to `arity` children) rooted at 0, laid out level by level.
pub fn knary(rank: usize, ranks: usize, arity: usize) -> (Option<usize>, Vec<usize>) {
    assert!(arity >= 1);
    let parent = if rank == 0 { None } else { Some((rank - 1) / arity) };
    let first_child = rank * arity + 1;
    let children: Vec<usize> = (first_child..(first_child + arity).min(ranks)).collect();
    (parent, children)
}

/// Parent and children of `rank` in a flat tree: rank 0 is the root, every
/// other rank is a direct child.
pub fn flat(rank: usize, ranks: usize) -> (Option<usize>, Vec<usize>) {
    if rank == 0 {
        (None, (1..ranks).collect())
    } else {
        (Some(0), Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_tree(ranks: usize, f: impl Fn(usize, usize) -> (Option<usize>, Vec<usize>)) {
        // Every non-root rank has exactly one parent, parent/children agree,
        // and every rank is reachable from the root.
        for r in 0..ranks {
            let (_, children) = f(r, ranks);
            for c in children {
                assert_eq!(f(c, ranks).0, Some(r), "ranks={ranks} child {c} of {r}");
            }
        }
        let mut seen = HashSet::new();
        let mut stack = vec![0usize];
        while let Some(r) = stack.pop() {
            assert!(seen.insert(r));
            stack.extend(f(r, ranks).1);
        }
        assert_eq!(seen.len(), ranks, "not all ranks reachable (ranks={ranks})");
    }

    #[test]
    fn binomial_tree_is_consistent() {
        for p in [1usize, 2, 3, 7, 8, 13, 16, 32] {
            check_tree(p, binomial);
        }
    }

    #[test]
    fn knomial_trees_are_consistent() {
        for p in [1usize, 2, 5, 8, 9, 16, 27, 30, 64] {
            for radix in [2usize, 3, 4, 8] {
                check_tree(p, |r, n| knomial(r, n, radix));
            }
        }
    }

    #[test]
    fn knomial_radix_two_matches_binomial() {
        for p in [2usize, 8, 16, 21] {
            for r in 0..p {
                assert_eq!(knomial(r, p, 2), binomial(r, p), "p={p} rank={r}");
            }
        }
    }

    #[test]
    fn knary_trees_are_consistent() {
        for p in [1usize, 2, 4, 10, 27, 40] {
            for arity in [1usize, 2, 3, 4] {
                check_tree(p, |r, n| knary(r, n, arity));
            }
        }
    }

    #[test]
    fn flat_tree_is_consistent() {
        for p in [1usize, 2, 8, 33] {
            check_tree(p, flat);
        }
        assert_eq!(flat(0, 4).1, vec![1, 2, 3]);
        assert_eq!(flat(3, 4).0, Some(0));
    }

    #[test]
    fn higher_radix_gives_shallower_trees() {
        let depth = |radix: usize| {
            let p = 64;
            (0..p)
                .map(|start| {
                    let mut d = 0;
                    let mut r = start;
                    while let (Some(parent), _) = knomial(r, p, radix) {
                        r = parent;
                        d += 1;
                    }
                    d
                })
                .max()
                .unwrap()
        };
        assert!(depth(8) < depth(2));
    }
}
