//! Cost-model schedules of the MPI-like baseline collectives.
//!
//! Each generator emits an `ec-netsim` program using **two-sided** operations
//! (`Send`/`Isend`/`Recv`), so the simulator charges them the matching
//! overheads, the progress-engine bandwidth penalty and — for large messages
//! — the rendezvous handshake that the one-sided GASPI schedules avoid.
//! This is what the `mpi*` curves of Figures 8–13 are generated from.

pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod reduce;
pub mod source;
pub mod trees;

pub use allreduce::MpiAllreduceVariant;
pub use alltoall::mpi_alltoall_pairwise_schedule;
pub use bcast::{mpi_bcast_binomial_schedule, mpi_bcast_default_schedule};
pub use reduce::{mpi_reduce_binomial_schedule, mpi_reduce_default_schedule};
pub use source::{BinomialBcastSource, PairwiseAlltoallSource};

#[cfg(test)]
mod tests {
    use super::*;
    use ec_netsim::{validate, ClusterSpec, CostModel, Engine};

    #[test]
    fn every_baseline_schedule_validates_and_simulates() {
        let p = 16;
        let bytes = 80_000;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
        let mut programs = vec![
            mpi_bcast_binomial_schedule(p, bytes),
            mpi_bcast_default_schedule(p, bytes),
            mpi_reduce_binomial_schedule(p, bytes),
            mpi_reduce_default_schedule(p, bytes),
            mpi_alltoall_pairwise_schedule(p, 4096),
        ];
        for variant in MpiAllreduceVariant::all() {
            programs.push(variant.schedule(p, bytes, 1));
        }
        for prog in programs {
            validate(&prog, p).unwrap();
            let t = e.makespan(&prog).unwrap();
            assert!(t > 0.0 && t < 1.0, "implausible makespan {t}");
        }
    }

    #[test]
    fn baseline_schedules_also_work_for_non_power_of_two() {
        let p = 12;
        let bytes = 10_000;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::test_model());
        for variant in MpiAllreduceVariant::all() {
            let prog = variant.schedule(p, bytes, 1);
            validate(&prog, p).unwrap();
            assert!(e.makespan(&prog).unwrap() > 0.0, "{variant:?} failed for p={p}");
        }
    }
}
