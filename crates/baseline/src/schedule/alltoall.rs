//! Schedule for the vendor `MPI_Alltoall` (pairwise exchange).

use ec_netsim::{Program, ProgramBuilder};

/// Pairwise-exchange `MPI_Alltoall`: `P - 1` rounds, in round `k` every rank
/// sends its block to `(rank + k) % P` and receives from `(rank - k) % P`
/// (Figure 13's `mpi` curves).
pub fn mpi_alltoall_pairwise_schedule(ranks: usize, block_bytes: u64) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    if ranks <= 1 {
        return b.build();
    }
    for rank in 0..ranks {
        for step in 1..ranks {
            let dst = (rank + step) % ranks;
            let src = (rank + ranks - step) % ranks;
            let tag = step as u32;
            b.isend(rank, dst, block_bytes, tag);
            b.recv(rank, src, block_bytes, tag);
        }
        b.wait_all_sends(rank);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_netsim::{validate, ClusterSpec, CostModel, Engine};

    #[test]
    fn traffic_matches_p_times_p_minus_1_blocks() {
        let p = 16u64;
        let block = 8192u64;
        let prog = mpi_alltoall_pairwise_schedule(p as usize, block);
        assert_eq!(prog.total_wire_bytes(), p * (p - 1) * block);
    }

    #[test]
    fn simulates_with_four_ranks_per_node() {
        let nodes = 8;
        let ppn = 4;
        let p = nodes * ppn;
        let prog = mpi_alltoall_pairwise_schedule(p, 32 * 1024);
        validate(&prog, p).unwrap();
        let t = Engine::new(ClusterSpec::homogeneous(nodes, ppn), CostModel::galileo_opa()).makespan(&prog).unwrap();
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn round_structure_serializes_rounds() {
        // The pairwise exchange must be slower than the one-sided direct
        // algorithm because every round waits for the received block.
        let p = 16;
        let block = 32 * 1024;
        let mpi = Engine::new(ClusterSpec::homogeneous(4, 4), CostModel::galileo_opa())
            .makespan(&mpi_alltoall_pairwise_schedule(p, block))
            .unwrap();
        let gaspi = Engine::new(ClusterSpec::homogeneous(4, 4), CostModel::galileo_opa())
            .makespan(&ec_collectives_alltoall(p, block))
            .unwrap();
        assert!(mpi > gaspi, "pairwise MPI ({mpi}) must be slower than the direct GASPI alltoall ({gaspi})");
    }

    // Local re-implementation of the GASPI direct schedule to avoid a cyclic
    // dev-dependency on ec-collectives.
    fn ec_collectives_alltoall(ranks: usize, block_bytes: u64) -> Program {
        let mut b = ProgramBuilder::new(ranks);
        for rank in 0..ranks {
            for offset in 1..ranks {
                let peer = (rank + offset) % ranks;
                b.put_notify(rank, peer, block_bytes, rank as u32);
            }
            let expected: Vec<u32> = (0..ranks).filter(|&r| r != rank).map(|r| r as u32).collect();
            b.wait_notify(rank, &expected);
        }
        b.build()
    }
}
