//! Schedules for `MPI_Bcast`: the binomial variant and the "default"
//! (size-adaptive) variant of a vendor library.

use ec_netsim::{Program, ProgramBuilder};

use super::trees::binomial;

/// Message size (bytes) above which the default broadcast switches from the
/// binomial tree to the scatter + ring-allgather (van de Geijn) algorithm,
/// mirroring what vendor libraries do for large payloads.
const LARGE_BCAST_THRESHOLD: u64 = 64 * 1024;

/// Binomial-tree `MPI_Bcast` (the `mpi-bin` curve of Figure 8).
pub fn mpi_bcast_binomial_schedule(ranks: usize, total_bytes: u64) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    if ranks <= 1 {
        return b.build();
    }
    for rank in 0..ranks {
        let (parent, children) = binomial(rank, ranks);
        if let Some(parent) = parent {
            b.recv(rank, parent, total_bytes, 0);
        }
        for child in children {
            b.send(rank, child, total_bytes, 0);
        }
    }
    b.build()
}

/// Size-adaptive "default" `MPI_Bcast` (the `mpi-def` curve of Figure 8):
/// binomial tree for small payloads, scatter + ring allgather for large ones.
pub fn mpi_bcast_default_schedule(ranks: usize, total_bytes: u64) -> Program {
    if total_bytes <= LARGE_BCAST_THRESHOLD || ranks <= 2 {
        return mpi_bcast_binomial_schedule(ranks, total_bytes);
    }
    scatter_allgather_bcast(ranks, total_bytes)
}

/// Van de Geijn broadcast: binomial scatter of 1/P chunks from the root,
/// followed by a ring allgather.
fn scatter_allgather_bcast(ranks: usize, total_bytes: u64) -> Program {
    let mut b = ProgramBuilder::new(ranks);
    let chunk = (total_bytes / ranks as u64).max(1);
    // Phase 1: binomial scatter.  A rank forwards to each child the portion
    // of the payload destined for the child's subtree.
    for rank in 0..ranks {
        let (parent, children) = binomial(rank, ranks);
        if let Some(parent) = parent {
            // Receives its own chunk plus everything for its subtree.
            let subtree = subtree_size(rank, ranks);
            b.recv(rank, parent, chunk * subtree as u64, 1);
        }
        for child in children {
            let subtree = subtree_size(child, ranks);
            b.send(rank, child, chunk * subtree as u64, 1);
        }
    }
    // Phase 2: ring allgather of the P chunks.
    for rank in 0..ranks {
        let next = (rank + 1) % ranks;
        let prev = (rank + ranks - 1) % ranks;
        for step in 0..ranks - 1 {
            b.isend(rank, next, chunk, 100 + step as u32);
            b.recv(rank, prev, chunk, 100 + step as u32);
        }
        b.wait_all_sends(rank);
    }
    b.build()
}

/// Number of ranks in the binomial subtree rooted at `rank`.
pub(crate) fn subtree_size(rank: usize, ranks: usize) -> usize {
    let (_, children) = binomial(rank, ranks);
    1 + children.into_iter().map(|c| subtree_size(c, ranks)).sum::<usize>()
}

/// Bytes carried by the binomial subtree rooted at `rank` when every rank
/// contributes `piece` bytes (used by gather-style schedules).
pub(crate) fn subtree_bytes(rank: usize, ranks: usize, piece: u64) -> u64 {
    subtree_size(rank, ranks) as u64 * piece
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_netsim::{validate, ClusterSpec, CostModel, Engine};

    #[test]
    fn binomial_bcast_sends_p_minus_1_messages() {
        let p = 16;
        let prog = mpi_bcast_binomial_schedule(p, 1000);
        validate(&prog, p).unwrap();
        assert_eq!(prog.total_wire_bytes(), (p as u64 - 1) * 1000);
    }

    #[test]
    fn default_bcast_switches_algorithm_with_size() {
        let p = 8;
        let small = mpi_bcast_default_schedule(p, 1000);
        let large = mpi_bcast_default_schedule(p, 8_000_000);
        // Small payloads use the binomial tree (P-1 messages)...
        assert_eq!(small.total_wire_bytes(), 7 * 1000);
        assert_eq!(small.total_ops(), mpi_bcast_binomial_schedule(p, 1000).total_ops());
        // ...large payloads switch to scatter + ring allgather, which issues
        // many more (smaller) messages than the binomial tree.
        assert!(large.total_ops() > mpi_bcast_binomial_schedule(p, 8_000_000).total_ops());
    }

    #[test]
    fn subtree_sizes_sum_to_world_size() {
        for p in [1usize, 2, 7, 8, 16, 23] {
            assert_eq!(subtree_size(0, p), p);
        }
    }

    #[test]
    fn default_bcast_is_faster_than_binomial_for_large_payloads() {
        let p = 32;
        let bytes = 8_000_000;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
        let t_bin = e.makespan(&mpi_bcast_binomial_schedule(p, bytes)).unwrap();
        let t_def = e.makespan(&mpi_bcast_default_schedule(p, bytes)).unwrap();
        assert!(t_def < t_bin, "scatter+allgather ({t_def}) must beat binomial ({t_bin}) for large payloads");
    }

    #[test]
    fn schedules_simulate_cleanly() {
        let p = 12;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::test_model());
        for prog in [
            mpi_bcast_binomial_schedule(p, 500),
            mpi_bcast_default_schedule(p, 500),
            mpi_bcast_default_schedule(p, 1_000_000),
        ] {
            validate(&prog, p).unwrap();
            assert!(e.makespan(&prog).unwrap() > 0.0);
        }
    }
}
