//! Reference (threaded) implementations of the MPI-like baseline collectives.
//!
//! These run on the two-sided [`crate::comm`] layer and serve as correctness
//! oracles: the GASPI collectives must produce the same results.  The
//! algorithms are the textbook formulations the Intel MPI variant names in
//! the paper refer to.

use crate::comm::{MpiComm, Result};

/// Element-wise sum of `other` into `acc`.
fn sum_into(acc: &mut [f64], other: &[f64]) {
    for (a, b) in acc.iter_mut().zip(other.iter()) {
        *a += *b;
    }
}

/// Binomial-tree broadcast from `root` (the `mpi-bin` variant of Figure 8).
pub fn bcast_binomial(comm: &mut MpiComm, data: &mut Vec<f64>, root: usize) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return Ok(());
    }
    let vrank = (rank + p - root) % p;
    // Receive from the parent (the rank that differs in the highest set bit).
    if vrank != 0 {
        let highest = usize::BITS - 1 - vrank.leading_zeros();
        let vparent = vrank & !(1 << highest);
        let parent = (vparent + root) % p;
        *data = comm.recv(parent, 0)?;
    }
    // Forward to children.
    let mut bit = 1usize;
    while bit < p {
        if bit > vrank {
            let vchild = vrank + bit;
            if vchild < p {
                let child = (vchild + root) % p;
                comm.send(child, 0, data)?;
            }
        }
        bit <<= 1;
    }
    Ok(())
}

/// Binomial-tree reduction (sum) towards `root` (the `mpi-bin` variant of
/// Figure 9).  Returns the reduced vector on the root, `None` elsewhere.
pub fn reduce_binomial(comm: &mut MpiComm, contribution: &[f64], root: usize) -> Result<Option<Vec<f64>>> {
    let p = comm.size();
    let rank = comm.rank();
    let mut acc = contribution.to_vec();
    if p == 1 {
        return Ok(Some(acc));
    }
    let vrank = (rank + p - root) % p;
    // Collect from children (largest offset first, mirroring the broadcast).
    let mut bit = 1usize;
    let mut child_bits = Vec::new();
    while bit < p {
        if bit > vrank && vrank + bit < p {
            child_bits.push(bit);
        }
        bit <<= 1;
    }
    for bit in child_bits.into_iter().rev() {
        let child = (vrank + bit + root) % p;
        let msg = comm.recv(child, 1)?;
        sum_into(&mut acc, &msg);
    }
    if vrank != 0 {
        let highest = usize::BITS - 1 - vrank.leading_zeros();
        let parent = ((vrank & !(1 << highest)) + root) % p;
        comm.send(parent, 1, &acc)?;
        Ok(None)
    } else {
        Ok(Some(acc))
    }
}

/// Recursive-doubling allreduce (sum), the classic small-message algorithm
/// (`mpi1` in Figures 11–12).
///
/// Non-power-of-two rank counts are handled with the standard fold phases:
/// the surplus ranks beyond the largest power of two `P2` hand their
/// contribution to `rank - P2` before the doubling loop (fold-in) and
/// receive the finished result afterwards (fold-out), so the collective is
/// total at any `P`.
pub fn allreduce_recursive_doubling(comm: &mut MpiComm, data: &mut [f64]) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return Ok(());
    }
    let p2 = crate::variants::prev_power_of_two(p);
    let extras = p - p2;
    if rank >= p2 {
        // Fold-in, then sit out the doubling and collect the result.
        comm.send(rank - p2, 2, data)?;
        let result = comm.recv(rank - p2, 2)?;
        data.copy_from_slice(&result);
        return Ok(());
    }
    if rank < extras {
        let folded = comm.recv(rank + p2, 2)?;
        sum_into(data, &folded);
    }
    let mut step = 1usize;
    while step < p2 {
        let partner = rank ^ step;
        let received = comm.sendrecv(partner, 2, data, partner, 2)?;
        sum_into(data, &received);
        step <<= 1;
    }
    if rank < extras {
        comm.send(rank + p2, 2, data)?;
    }
    Ok(())
}

/// Ring allreduce (sum): reduce-scatter around the ring followed by an
/// allgather (`mpi8` in Figures 11–12, and the structure of Shumilin's ring).
pub fn allreduce_ring(comm: &mut MpiComm, data: &mut [f64]) -> Result<()> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return Ok(());
    }
    let n = data.len();
    let chunk_start = |c: usize| c * n / p;
    let chunk_end = |c: usize| (c + 1) * n / p;
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;

    // Reduce-scatter.
    for step in 0..p - 1 {
        let send_chunk = (rank + p - step) % p;
        let recv_chunk = (rank + p - step - 1) % p;
        let outgoing = data[chunk_start(send_chunk)..chunk_end(send_chunk)].to_vec();
        comm.send(next, 3, &outgoing)?;
        let incoming = comm.recv(prev, 3)?;
        sum_into(&mut data[chunk_start(recv_chunk)..chunk_end(recv_chunk)], &incoming);
    }
    // Allgather.
    for step in 0..p - 1 {
        let send_chunk = (rank + 1 + p - step) % p;
        let recv_chunk = (rank + p - step) % p;
        let outgoing = data[chunk_start(send_chunk)..chunk_end(send_chunk)].to_vec();
        comm.send(next, 4, &outgoing)?;
        let incoming = comm.recv(prev, 4)?;
        data[chunk_start(recv_chunk)..chunk_end(recv_chunk)].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Pairwise-exchange AlltoAll, the default medium-size algorithm of vendor
/// MPI libraries (Figure 13's `mpi` lines).  `send` holds one block of
/// `block` elements per destination; returns the received blocks.
pub fn alltoall_pairwise(comm: &mut MpiComm, send: &[f64], block: usize) -> Result<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    assert_eq!(send.len(), p * block, "send buffer must hold one block per rank");
    let mut recv = vec![0.0; p * block];
    recv[rank * block..(rank + 1) * block].copy_from_slice(&send[rank * block..(rank + 1) * block]);
    for step in 1..p {
        let dst = (rank + step) % p;
        let src = (rank + p - step) % p;
        let outgoing = &send[dst * block..(dst + 1) * block];
        let incoming = comm.sendrecv(dst, 5, outgoing, src, 5)?;
        recv[src * block..(src + 1) * block].copy_from_slice(&incoming);
    }
    Ok(recv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::MpiWorld;

    #[test]
    fn binomial_broadcast_replicates_root_data() {
        for p in [2usize, 3, 5, 8] {
            for root in [0, p - 1] {
                let out = MpiWorld::new(p).run(|comm| {
                    let mut data = if comm.rank() == root { vec![7.0, 8.0, 9.0] } else { vec![0.0; 3] };
                    bcast_binomial(comm, &mut data, root).unwrap();
                    data
                });
                for data in &out {
                    assert_eq!(data, &vec![7.0, 8.0, 9.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn binomial_reduce_sums_contributions() {
        for p in [2usize, 4, 6, 8] {
            let out = MpiWorld::new(p).run(|comm| {
                let contribution = vec![comm.rank() as f64 + 1.0; 5];
                reduce_binomial(comm, &contribution, 0).unwrap()
            });
            let total = (p * (p + 1) / 2) as f64;
            assert_eq!(out[0].as_ref().unwrap(), &vec![total; 5]);
            assert!(out[1..].iter().all(Option::is_none));
        }
    }

    #[test]
    fn recursive_doubling_allreduce_handles_non_power_of_two_worlds() {
        // Regression: this used to assert on non-power-of-two rank counts;
        // p = 12 exercises fold-in/fold-out around the p2 = 8 core.
        for (p, n) in [(3usize, 5usize), (6, 9), (12, 17)] {
            let out = MpiWorld::new(p).run(move |comm| {
                let mut data: Vec<f64> = (0..n).map(|i| (comm.rank() + 1) as f64 * (i + 1) as f64).collect();
                allreduce_recursive_doubling(comm, &mut data).unwrap();
                data
            });
            for data in &out {
                for (i, &v) in data.iter().enumerate() {
                    let want: f64 = (0..p).map(|r| (r + 1) as f64 * (i + 1) as f64).sum();
                    assert!((v - want).abs() < 1e-9, "p={p} elem {i}: {v} != {want}");
                }
            }
        }
    }

    #[test]
    fn recursive_doubling_allreduce_matches_sum() {
        for p in [2usize, 4, 8] {
            let out = MpiWorld::new(p).run(|comm| {
                let mut data = vec![(comm.rank() + 1) as f64; 6];
                allreduce_recursive_doubling(comm, &mut data).unwrap();
                data
            });
            let total = (p * (p + 1) / 2) as f64;
            for data in &out {
                assert_eq!(data, &vec![total; 6]);
            }
        }
    }

    #[test]
    fn ring_allreduce_matches_sum_for_awkward_sizes() {
        for (p, n) in [(4usize, 10usize), (3, 7), (8, 5), (5, 23)] {
            let out = MpiWorld::new(p).run(move |comm| {
                let mut data: Vec<f64> = (0..n).map(|i| (comm.rank() + 1) as f64 * (i + 1) as f64).collect();
                allreduce_ring(comm, &mut data).unwrap();
                data
            });
            for data in &out {
                for (i, &v) in data.iter().enumerate() {
                    let want: f64 = (0..p).map(|r| (r + 1) as f64 * (i + 1) as f64).sum();
                    assert!((v - want).abs() < 1e-9, "p={p} n={n} elem {i}: {v} != {want}");
                }
            }
        }
    }

    #[test]
    fn pairwise_alltoall_matches_reference() {
        let p = 5;
        let block = 3;
        let out = MpiWorld::new(p).run(move |comm| {
            let send: Vec<f64> = (0..p * block).map(|i| (comm.rank() * 100 + i) as f64).collect();
            alltoall_pairwise(comm, &send, block).unwrap()
        });
        for (j, recv) in out.iter().enumerate() {
            for i in 0..p {
                for k in 0..block {
                    assert_eq!(recv[i * block + k], (i * 100 + j * block + k) as f64);
                }
            }
        }
    }
}
