//! Single-source baseline algorithm variants: each algorithm below is **one
//! body** generic over [`TwoSided`], executed both by the threaded
//! correctness oracle ([`ThreadedTwoSided`]) and by the schedule recorder
//! ([`RecordingTwoSided`]) — closing the gap between the five hand-written
//! threaded baselines and the twelve-variant vendor frontier the paper's
//! Figures 11–13 compare against.
//!
//! Variants provided (paper-figure nomenclature in parentheses):
//!
//! * **Allreduce** — [`rabenseifner_allreduce`] (recursive-halving
//!   reduce-scatter + recursive-doubling allgather, `mpi2`, with fold-in /
//!   fold-out pre/post phases for non-power-of-two rank counts) and
//!   [`reduce_scatter_allgather_allreduce`] (chunked ring reduce-scatter +
//!   allgather, native at any rank count, the structure of `mpi7`/`mpi8`);
//! * **AlltoAll** — [`bruck_alltoall`] (log-round store-and-forward, the
//!   classic small-message algorithm) and [`pairwise_alltoall`] (Figure 13's
//!   `mpi` curves);
//! * **Bcast** — [`scatter_allgather_bcast`] (van de Geijn),
//!   [`pipelined_binomial_bcast`] (segment-pipelined tree) and
//!   [`binomial_bcast`] (`mpi-bin` of Figure 8);
//! * **Reduce** — [`binomial_reduce`] (`mpi-bin` of Figure 9) and
//!   [`reduce_scatter_gather_reduce`] (Rabenseifner's reduce, the `mpi-def`
//!   large-message algorithm, with the same non-power-of-two fold).
//!
//! Every body has a `*_schedule` twin that records it into an
//! `ec_netsim::Program`; the `ec_bench` tuner prices those schedules through
//! both the alpha–beta model and the PR 4 network fabric to pick the best
//! variant per (rank count, message size, topology).
//!
//! ## Working-buffer layouts
//!
//! The rooted collectives and the allreduces operate directly on the payload
//! (`n` elements at offset 0).  The alltoalls use staged layouts documented
//! on the respective bodies.  Chunked algorithms split the payload with
//! `ec_collectives::topology::chunk_ranges`, the same helper the GASPI ring
//! uses, so chunk boundaries agree across the whole suite.

use std::ops::Range;

use ec_collectives::topology::chunk_ranges;
use ec_netsim::Program;

use crate::comm::{MpiComm, Result, Tag};
use crate::schedule::trees::binomial;
use crate::twosided::{record, RecordingTwoSided, ThreadedTwoSided, TwoSided};

/// Default segment size (elements) of the pipelined binomial broadcast:
/// 2048 doubles = 16 KiB segments, a typical vendor pipelining granule.
pub const PIPELINE_SEGMENT_ELEMS: usize = 2048;

// Tag bases; each algorithm runs in its own program/world, so bases only
// need to keep the phases of one algorithm apart.
const TAG_TREE: Tag = 0;
const TAG_SCATTER: Tag = 1;
const TAG_FOLD_IN: Tag = 900;
const TAG_FOLD_OUT: Tag = 901;
const TAG_RS: Tag = 100;
const TAG_GATHER: Tag = 200;
const TAG_AG: Tag = 300;
const TAG_RING: Tag = 400;
const TAG_BRUCK: Tag = 500;

/// Virtual rank of `rank` in a world rooted at `root`.
fn vrank(rank: usize, root: usize, p: usize) -> usize {
    (rank + p - root) % p
}

/// Real rank of virtual rank `v` in a world rooted at `root`.
fn real(v: usize, root: usize, p: usize) -> usize {
    (v + root) % p
}

/// Largest power of two not exceeding `p` (shared by every fold-in/fold-out
/// variant, including [`crate::collectives::allreduce_recursive_doubling`]).
pub(crate) fn prev_power_of_two(p: usize) -> usize {
    assert!(p > 0, "a world has at least one rank");
    1usize << (usize::BITS - 1 - p.leading_zeros())
}

/// Element range spanned by chunks `lo..hi`.
fn chunk_span(chunks: &[(usize, usize)], lo: usize, hi: usize) -> Range<usize> {
    let (start, _) = chunks[lo];
    let (last_start, last_len) = chunks[hi - 1];
    start..last_start + last_len
}

// ---------------------------------------------------------------------------
// broadcast bodies
// ---------------------------------------------------------------------------

/// Binomial-tree broadcast of `n` elements from `root` (payload at offset 0).
pub fn binomial_bcast<T: TwoSided>(t: &mut T, n: usize, root: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let v = vrank(t.rank(), root, p);
    let (parent, children) = binomial(v, p);
    if let Some(pv) = parent {
        t.recv_copy(real(pv, root, p), TAG_TREE, 0..n)?;
    }
    for c in children {
        t.send(real(c, root, p), TAG_TREE, 0..n)?;
    }
    Ok(())
}

/// Segment-pipelined binomial broadcast: the payload is cut into
/// `seg_elems`-element segments that flow down the tree independently, so an
/// inner node forwards segment `s` while still receiving segment `s + 1` —
/// the classic latency/bandwidth compromise between the binomial tree and
/// the scatter+allgather algorithm.
pub fn pipelined_binomial_bcast<T: TwoSided>(t: &mut T, n: usize, root: usize, seg_elems: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let seg = seg_elems.max(1);
    let v = vrank(t.rank(), root, p);
    let (parent, children) = binomial(v, p);
    let segments = n.div_ceil(seg);
    for s in 0..segments {
        let range = s * seg..n.min((s + 1) * seg);
        if let Some(pv) = parent {
            t.recv_copy(real(pv, root, p), s as Tag, range.clone())?;
        }
        for &c in &children {
            t.isend(real(c, root, p), s as Tag, range.clone())?;
        }
    }
    t.wait_all_sends()
}

/// Van de Geijn broadcast: binomial scatter of `1/P` chunks from the root
/// (each child receives the contiguous range its subtree owns) followed by a
/// ring allgather of the chunks — the vendor "default" for large payloads.
pub fn scatter_allgather_bcast<T: TwoSided>(t: &mut T, n: usize, root: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let v = vrank(t.rank(), root, p);
    let chunks = chunk_ranges(n, p);
    // Phase 1: recursive-halving binomial scatter with contiguous chunk
    // ownership — the crate's binomial tree numbers subtrees
    // *non-contiguously* (the subtree of rank 1 at P = 16 is {1, 3, 5, ...}),
    // so the scatter walks its own halving tree instead: the holder of the
    // virtual-rank segment `[lo, hi)` ships the chunks of the upper half to
    // that half's first member, then both recurse into their halves.
    let (mut lo, mut hi) = (0usize, p);
    while hi - lo > 1 {
        let mid = lo + (hi - lo).div_ceil(2);
        let upper = chunk_span(&chunks, mid, hi);
        if v == lo {
            t.send(real(mid, root, p), TAG_SCATTER, upper)?;
        } else if v == mid {
            t.recv_copy(real(lo, root, p), TAG_SCATTER, upper)?;
        }
        if v < mid {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // Phase 2: ring allgather of the P chunks (virtual-rank ring).  After
    // the scatter, virtual rank v owns chunk v; in step s it forwards chunk
    // (v - s) and receives chunk (v - s - 1), all landing at final offsets.
    let next = real((v + 1) % p, root, p);
    let prev = real((v + p - 1) % p, root, p);
    for step in 0..p - 1 {
        let (s_start, s_len) = chunks[(v + p - step) % p];
        let (r_start, r_len) = chunks[(v + 2 * p - step - 1) % p];
        t.isend(next, TAG_RING + step as Tag, s_start..s_start + s_len)?;
        t.recv_copy(prev, TAG_RING + step as Tag, r_start..r_start + r_len)?;
    }
    t.wait_all_sends()
}

// ---------------------------------------------------------------------------
// reduce bodies
// ---------------------------------------------------------------------------

/// Binomial-tree reduction (sum) of `n` elements towards `root`; the result
/// accumulates in the root's working buffer.
pub fn binomial_reduce<T: TwoSided>(t: &mut T, n: usize, root: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let v = vrank(t.rank(), root, p);
    let (parent, children) = binomial(v, p);
    // Deeper children finish first: fold them in largest-offset-first,
    // mirroring the reference implementation in `crate::collectives`.
    for c in children.iter().rev() {
        t.recv_reduce(real(*c, root, p), TAG_TREE, 0..n)?;
    }
    if let Some(pv) = parent {
        t.send(real(pv, root, p), TAG_TREE, 0..n)?;
    }
    Ok(())
}

/// Rabenseifner's reduce: recursive-halving reduce-scatter over the largest
/// power-of-two sub-world, then a binomial gather of the fully reduced
/// pieces to the root.  Non-power-of-two rank counts fold the surplus ranks'
/// contributions into the low ranks before the scatter (fold-in); only the
/// root needs the result, so there is no fold-out.
pub fn reduce_scatter_gather_reduce<T: TwoSided>(t: &mut T, n: usize, root: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let v = vrank(t.rank(), root, p);
    let p2 = prev_power_of_two(p);
    let extras = p - p2;
    if v >= p2 {
        // Fold-in: surplus virtual ranks hand their contribution over and
        // retire from the collective.
        return t.send(real(v - p2, root, p), TAG_FOLD_IN, 0..n);
    }
    if v < extras {
        t.recv_reduce(real(v + p2, root, p), TAG_FOLD_IN, 0..n)?;
    }
    // Recursive-halving reduce-scatter over virtual ranks 0..p2.
    let steps = halving_reduce_scatter(t, v, p2, 0..n, root)?;
    // Binomial gather of the owned ranges back to virtual rank 0: unwind the
    // halving from the deepest level; the partner with the set bit sends its
    // fully reduced range and retires.
    let mut owned = steps.last().map_or(0..n, |s| s.kept.clone());
    for (k, step) in steps.iter().enumerate().rev() {
        let distance = p2 >> (k + 1);
        let partner = real(step.partner, root, p);
        if v & distance != 0 {
            return t.send(partner, TAG_GATHER + k as Tag, owned);
        }
        t.recv_copy(partner, TAG_GATHER + k as Tag, step.sent.clone())?;
        owned = owned.start.min(step.sent.start)..owned.end.max(step.sent.end);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// allreduce bodies
// ---------------------------------------------------------------------------

/// One level of the recursive-halving recursion: who was exchanged with and
/// which half of the then-current window each partner kept.
struct HalvingStep {
    partner: usize,
    kept: Range<usize>,
    sent: Range<usize>,
}

/// Recursive-halving reduce-scatter over the power-of-two world `0..p2`
/// (virtual ranks; `root` maps them back to real ranks).  Returns the
/// per-level exchange record so callers can unwind it into an allgather
/// (allreduce) or a gather (reduce).
fn halving_reduce_scatter<T: TwoSided>(
    t: &mut T,
    v: usize,
    p2: usize,
    window: Range<usize>,
    root: usize,
) -> Result<Vec<HalvingStep>> {
    let p = t.num_ranks();
    let d = p2.trailing_zeros();
    let (mut lo, mut hi) = (window.start, window.end);
    let mut steps = Vec::with_capacity(d as usize);
    for k in 0..d {
        let distance = p2 >> (k + 1);
        let partner = v ^ distance;
        let mid = lo + (hi - lo) / 2;
        let (kept, sent) = if v & distance == 0 { (lo..mid, mid..hi) } else { (mid..hi, lo..mid) };
        t.isend(real(partner, root, p), TAG_RS + k as Tag, sent.clone())?;
        t.recv_reduce(real(partner, root, p), TAG_RS + k as Tag, kept.clone())?;
        lo = kept.start;
        hi = kept.end;
        steps.push(HalvingStep { partner, kept, sent });
    }
    t.wait_all_sends()?;
    Ok(steps)
}

/// Rabenseifner's allreduce (`mpi2`): recursive-halving reduce-scatter
/// followed by a recursive-doubling allgather.  Non-power-of-two rank
/// counts are handled by folding the surplus ranks into the low ranks
/// before the scatter (fold-in) and sending them the finished result
/// afterwards (fold-out), so the collective is total at any `P`.
pub fn rabenseifner_allreduce<T: TwoSided>(t: &mut T, n: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let rank = t.rank();
    let p2 = prev_power_of_two(p);
    let extras = p - p2;
    if rank >= p2 {
        t.send(rank - p2, TAG_FOLD_IN, 0..n)?;
        return t.recv_copy(rank - p2, TAG_FOLD_OUT, 0..n);
    }
    if rank < extras {
        t.recv_reduce(rank + p2, TAG_FOLD_IN, 0..n)?;
    }
    let steps = halving_reduce_scatter(t, rank, p2, 0..n, 0)?;
    // Recursive-doubling allgather: unwind the halving — at each level both
    // partners exchange their (now fully reduced) windows, doubling what
    // they own until everyone holds the whole vector.
    let mut owned = steps.last().map_or(0..n, |s| s.kept.clone());
    for (k, step) in steps.iter().enumerate().rev() {
        t.isend(step.partner, TAG_AG + k as Tag, owned.clone())?;
        t.recv_copy(step.partner, TAG_AG + k as Tag, step.sent.clone())?;
        owned = owned.start.min(step.sent.start)..owned.end.max(step.sent.end);
    }
    t.wait_all_sends()?;
    if rank < extras {
        t.send(rank + p2, TAG_FOLD_OUT, 0..n)?;
    }
    Ok(())
}

/// Chunked reduce-scatter + allgather allreduce over a ring — the
/// bandwidth-optimal large-message algorithm, native at **any** rank count
/// (no power-of-two fold needed): the payload is split into `P` chunks and
/// each phase circulates them once around the ring.
pub fn reduce_scatter_allgather_allreduce<T: TwoSided>(t: &mut T, n: usize) -> Result<()> {
    let p = t.num_ranks();
    if p <= 1 || n == 0 {
        return Ok(());
    }
    let rank = t.rank();
    let chunks = chunk_ranges(n, p);
    let next = (rank + 1) % p;
    let prev = (rank + p - 1) % p;
    // Reduce-scatter: after step s we have folded chunk (rank - s - 1) of
    // the predecessor into our copy; chunk (rank + 1) ends up fully reduced.
    for step in 0..p - 1 {
        let (s_start, s_len) = chunks[(rank + p - step) % p];
        let (r_start, r_len) = chunks[(rank + 2 * p - step - 1) % p];
        t.isend(next, TAG_RS + step as Tag, s_start..s_start + s_len)?;
        t.recv_reduce(prev, TAG_RS + step as Tag, r_start..r_start + r_len)?;
    }
    t.wait_all_sends()?;
    // Allgather: the reduced chunks travel once more around the ring,
    // overwriting the stale partial sums at their final offsets.
    for step in 0..p - 1 {
        let (s_start, s_len) = chunks[(rank + 1 + p - step) % p];
        let (r_start, r_len) = chunks[(rank + p - step) % p];
        t.isend(next, TAG_AG + step as Tag, s_start..s_start + s_len)?;
        t.recv_copy(prev, TAG_AG + step as Tag, r_start..r_start + r_len)?;
    }
    t.wait_all_sends()
}

// ---------------------------------------------------------------------------
// alltoall bodies
// ---------------------------------------------------------------------------

/// Pairwise-exchange AlltoAll over a working buffer laid out as
/// `[send: P*block | recv: P*block]`: `P - 1` rounds, in round `k` every
/// rank exchanges one block with ranks at ring distance `k` — Figure 13's
/// `mpi` curves.
pub fn pairwise_alltoall<T: TwoSided>(t: &mut T, block: usize) -> Result<()> {
    let p = t.num_ranks();
    let rank = t.rank();
    let recv0 = p * block;
    t.local_copy(recv0 + rank * block, rank * block..(rank + 1) * block)?;
    for step in 1..p {
        let dst = (rank + step) % p;
        let src = (rank + p - step) % p;
        t.isend(dst, step as Tag, dst * block..(dst + 1) * block)?;
        t.recv_copy(src, step as Tag, recv0 + src * block..recv0 + (src + 1) * block)?;
    }
    t.wait_all_sends()
}

/// Bruck's AlltoAll: `ceil(log2 P)` store-and-forward rounds, each shipping
/// *one* aggregated message of up to `P/2` blocks — the latency-optimal
/// small-block algorithm, at the price of each block crossing the wire up to
/// `log2 P` times and of local pack/unpack copies.
///
/// Working-buffer layout (all regions `P*block` elements):
/// `[send | work | stage-out | stage-in | recv]`.
pub fn bruck_alltoall<T: TwoSided>(t: &mut T, block: usize) -> Result<()> {
    let p = t.num_ranks();
    let rank = t.rank();
    let b = block;
    let (work, out, inn, recv) = (p * b, 2 * p * b, 3 * p * b, 4 * p * b);
    // Phase 1: local rotation — work[j] holds the block destined to rank
    // (rank + j) mod P.
    for j in 0..p {
        let src = ((rank + j) % p) * b;
        t.local_copy(work + j * b, src..src + b)?;
    }
    // Phase 2: log-rounds.  In round k every rank packs the blocks whose
    // index has bit k set, ships them to rank + 2^k, and receives the
    // matching set from rank - 2^k into the same block slots.
    let mut pof2 = 1usize;
    let mut round: Tag = 0;
    while pof2 < p {
        let js: Vec<usize> = (0..p).filter(|j| j & pof2 != 0).collect();
        for (i, &j) in js.iter().enumerate() {
            t.local_copy(out + i * b, work + j * b..work + (j + 1) * b)?;
        }
        let m = js.len() * b;
        t.isend((rank + pof2) % p, TAG_BRUCK + round, out..out + m)?;
        t.recv_copy((rank + p - pof2) % p, TAG_BRUCK + round, inn..inn + m)?;
        t.wait_all_sends()?;
        for (i, &j) in js.iter().enumerate() {
            t.local_copy(work + j * b, inn + i * b..inn + (i + 1) * b)?;
        }
        pof2 <<= 1;
        round += 1;
    }
    // Phase 3: inverse rotation with reversal — the block received for
    // source rank s sits in work[(rank - s) mod P].
    for j in 0..p {
        let src = work + ((rank + p - j) % p) * b;
        t.local_copy(recv + j * b, src..src + b)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// threaded wrappers (correctness oracles on the real runtime)
// ---------------------------------------------------------------------------

/// Recursive-halving/doubling (Rabenseifner) allreduce on the threaded
/// runtime; works at any rank count.
pub fn allreduce_rabenseifner(comm: &mut MpiComm, data: &mut [f64]) -> Result<()> {
    let n = data.len();
    rabenseifner_allreduce(&mut ThreadedTwoSided::new(comm, data), n)
}

/// Chunked reduce-scatter + allgather allreduce on the threaded runtime;
/// native at non-power-of-two rank counts.
pub fn allreduce_reduce_scatter_allgather(comm: &mut MpiComm, data: &mut [f64]) -> Result<()> {
    let n = data.len();
    reduce_scatter_allgather_allreduce(&mut ThreadedTwoSided::new(comm, data), n)
}

/// Van de Geijn scatter + allgather broadcast on the threaded runtime.
pub fn bcast_scatter_allgather(comm: &mut MpiComm, data: &mut [f64], root: usize) -> Result<()> {
    let n = data.len();
    scatter_allgather_bcast(&mut ThreadedTwoSided::new(comm, data), n, root)
}

/// Segment-pipelined binomial broadcast on the threaded runtime.
pub fn bcast_pipelined_binomial(comm: &mut MpiComm, data: &mut [f64], root: usize, seg_elems: usize) -> Result<()> {
    let n = data.len();
    pipelined_binomial_bcast(&mut ThreadedTwoSided::new(comm, data), n, root, seg_elems)
}

/// Rabenseifner's reduce-scatter + gather reduce on the threaded runtime.
/// Returns the reduced vector on the root, `None` elsewhere.
pub fn reduce_rsg(comm: &mut MpiComm, contribution: &[f64], root: usize) -> Result<Option<Vec<f64>>> {
    let n = contribution.len();
    let mut buf = contribution.to_vec();
    reduce_scatter_gather_reduce(&mut ThreadedTwoSided::new(comm, &mut buf), n, root)?;
    Ok(if comm.rank() == root { Some(buf) } else { None })
}

/// Bruck AlltoAll on the threaded runtime: `send` holds one `block`-element
/// block per destination; returns the received blocks in source order.
pub fn alltoall_bruck(comm: &mut MpiComm, send: &[f64], block: usize) -> Result<Vec<f64>> {
    let p = comm.size();
    assert_eq!(send.len(), p * block, "send buffer must hold one block per rank");
    let mut buf = vec![0.0; 5 * p * block];
    buf[..p * block].copy_from_slice(send);
    bruck_alltoall(&mut ThreadedTwoSided::new(comm, &mut buf), block)?;
    Ok(buf[4 * p * block..].to_vec())
}

/// Pairwise-exchange AlltoAll through the single-source body (the reference
/// [`crate::collectives::alltoall_pairwise`] is the hand-written oracle it
/// is cross-checked against).
pub fn alltoall_pairwise_ss(comm: &mut MpiComm, send: &[f64], block: usize) -> Result<Vec<f64>> {
    let p = comm.size();
    assert_eq!(send.len(), p * block, "send buffer must hold one block per rank");
    let mut buf = vec![0.0; 2 * p * block];
    buf[..p * block].copy_from_slice(send);
    pairwise_alltoall(&mut ThreadedTwoSided::new(comm, &mut buf), block)?;
    Ok(buf[p * block..].to_vec())
}

/// Binomial broadcast through the single-source body.
pub fn bcast_binomial_ss(comm: &mut MpiComm, data: &mut [f64], root: usize) -> Result<()> {
    let n = data.len();
    binomial_bcast(&mut ThreadedTwoSided::new(comm, data), n, root)
}

/// Binomial reduce through the single-source body.  Returns the reduced
/// vector on the root, `None` elsewhere.
pub fn reduce_binomial_ss(comm: &mut MpiComm, contribution: &[f64], root: usize) -> Result<Option<Vec<f64>>> {
    let n = contribution.len();
    let mut buf = contribution.to_vec();
    binomial_reduce(&mut ThreadedTwoSided::new(comm, &mut buf), n, root)?;
    Ok(if comm.rank() == root { Some(buf) } else { None })
}

// ---------------------------------------------------------------------------
// schedule generators (the same bodies, recorded)
// ---------------------------------------------------------------------------

/// Record `body` over byte-granular elements (1 byte per element), the
/// convention of the hand-written baseline schedule generators.
fn record_bytes(ranks: usize, body: impl FnMut(&mut RecordingTwoSided) -> Result<()>) -> Program {
    record(ranks, 1, body)
}

/// Schedule of [`rabenseifner_allreduce`] for `ranks` ranks reducing
/// `total_bytes` bytes.
pub fn rabenseifner_allreduce_schedule(ranks: usize, total_bytes: u64) -> Program {
    record_bytes(ranks, |t| rabenseifner_allreduce(t, total_bytes as usize))
}

/// Schedule of [`reduce_scatter_allgather_allreduce`].
pub fn rsag_allreduce_schedule(ranks: usize, total_bytes: u64) -> Program {
    record_bytes(ranks, |t| reduce_scatter_allgather_allreduce(t, total_bytes as usize))
}

/// Schedule of [`bruck_alltoall`] with `block_bytes`-byte blocks.
pub fn bruck_alltoall_schedule(ranks: usize, block_bytes: u64) -> Program {
    record_bytes(ranks, |t| bruck_alltoall(t, block_bytes as usize))
}

/// Schedule of [`pairwise_alltoall`] with `block_bytes`-byte blocks.
pub fn pairwise_alltoall_schedule(ranks: usize, block_bytes: u64) -> Program {
    record_bytes(ranks, |t| pairwise_alltoall(t, block_bytes as usize))
}

/// Schedule of [`scatter_allgather_bcast`] from rank 0.
pub fn scatter_allgather_bcast_schedule(ranks: usize, total_bytes: u64) -> Program {
    record_bytes(ranks, |t| scatter_allgather_bcast(t, total_bytes as usize, 0))
}

/// Schedule of [`pipelined_binomial_bcast`] from rank 0 with
/// `segment_bytes`-byte segments.
pub fn pipelined_binomial_bcast_schedule(ranks: usize, total_bytes: u64, segment_bytes: u64) -> Program {
    record_bytes(ranks, |t| pipelined_binomial_bcast(t, total_bytes as usize, 0, segment_bytes.max(1) as usize))
}

/// Schedule of [`binomial_bcast`] from rank 0.
pub fn binomial_bcast_schedule(ranks: usize, total_bytes: u64) -> Program {
    record_bytes(ranks, |t| binomial_bcast(t, total_bytes as usize, 0))
}

/// Schedule of [`binomial_reduce`] towards rank 0.
pub fn binomial_reduce_schedule(ranks: usize, total_bytes: u64) -> Program {
    record_bytes(ranks, |t| binomial_reduce(t, total_bytes as usize, 0))
}

/// Schedule of [`reduce_scatter_gather_reduce`] towards rank 0.
pub fn rsg_reduce_schedule(ranks: usize, total_bytes: u64) -> Program {
    record_bytes(ranks, |t| reduce_scatter_gather_reduce(t, total_bytes as usize, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{allreduce_ring, alltoall_pairwise, reduce_binomial};
    use crate::comm::MpiWorld;
    use ec_netsim::{validate, ClusterSpec, CostModel, Engine};

    fn input(rank: usize, n: usize) -> Vec<f64> {
        (0..n).map(|i| ((rank * 31 + i * 7) % 17) as f64 - 8.0).collect()
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        (0..n).map(|i| (0..p).map(|r| input(r, n)[i]).sum()).collect()
    }

    #[test]
    fn rabenseifner_allreduce_matches_the_sum_at_any_rank_count() {
        for p in [2usize, 3, 4, 6, 7, 8, 12] {
            let n = 37;
            let want = expected_sum(p, n);
            let out = MpiWorld::new(p).run(|comm| {
                let mut data = input(comm.rank(), n);
                allreduce_rabenseifner(comm, &mut data).unwrap();
                data
            });
            for data in &out {
                for (a, b) in data.iter().zip(want.iter()) {
                    assert!((a - b).abs() < 1e-9, "p={p}");
                }
            }
        }
    }

    #[test]
    fn rsag_allreduce_matches_the_ring_reference_bit_for_bit() {
        for (p, n) in [(5usize, 23usize), (8, 64), (12, 7)] {
            let ss = MpiWorld::new(p).run(|comm| {
                let mut data = input(comm.rank(), n);
                allreduce_reduce_scatter_allgather(comm, &mut data).unwrap();
                data
            });
            let reference = MpiWorld::new(p).run(|comm| {
                let mut data = input(comm.rank(), n);
                allreduce_ring(comm, &mut data).unwrap();
                data
            });
            // Same chunking, same fold order: the single-source body must
            // reproduce the hand-written ring exactly, not just within 1e-9.
            assert_eq!(ss, reference, "p={p} n={n}");
        }
    }

    #[test]
    fn bcast_variants_replicate_the_root_data() {
        for p in [2usize, 5, 8, 12] {
            for root in [0, p - 1] {
                let n = 41;
                let want = input(root, n);
                for variant in 0..3 {
                    let root_data = want.clone();
                    let out = MpiWorld::new(p).run(move |comm| {
                        let mut data = if comm.rank() == root { root_data.clone() } else { vec![0.0; n] };
                        match variant {
                            0 => bcast_scatter_allgather(comm, &mut data, root).unwrap(),
                            1 => bcast_pipelined_binomial(comm, &mut data, root, 16).unwrap(),
                            _ => bcast_binomial_ss(comm, &mut data, root).unwrap(),
                        }
                        data
                    });
                    for data in &out {
                        assert_eq!(data, &want, "variant {variant} p={p} root={root}");
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_variants_agree_with_the_binomial_reference() {
        for p in [2usize, 6, 8, 12] {
            let n = 29;
            let root = p / 2;
            let reference = MpiWorld::new(p).run(move |comm| {
                let contribution = input(comm.rank(), n);
                reduce_binomial(comm, &contribution, root).unwrap()
            });
            let want = reference[root].as_ref().unwrap();
            for variant in 0..2 {
                let out = MpiWorld::new(p).run(move |comm| {
                    let contribution = input(comm.rank(), n);
                    match variant {
                        0 => reduce_rsg(comm, &contribution, root).unwrap(),
                        _ => reduce_binomial_ss(comm, &contribution, root).unwrap(),
                    }
                });
                let got = out[root].as_ref().unwrap();
                for (a, b) in got.iter().zip(want.iter()) {
                    assert!((a - b).abs() < 1e-9, "variant {variant} p={p}");
                }
                assert!(out.iter().enumerate().all(|(r, v)| r == root || v.is_none()));
            }
        }
    }

    #[test]
    fn alltoall_variants_match_the_pairwise_reference() {
        for p in [2usize, 3, 5, 8, 12] {
            let block = 3;
            let reference = MpiWorld::new(p).run(move |comm| {
                let send: Vec<f64> = (0..p * block).map(|i| (comm.rank() * 100 + i) as f64).collect();
                alltoall_pairwise(comm, &send, block).unwrap()
            });
            for variant in 0..2 {
                let out = MpiWorld::new(p).run(move |comm| {
                    let send: Vec<f64> = (0..p * block).map(|i| (comm.rank() * 100 + i) as f64).collect();
                    match variant {
                        0 => alltoall_bruck(comm, &send, block).unwrap(),
                        _ => alltoall_pairwise_ss(comm, &send, block).unwrap(),
                    }
                });
                assert_eq!(out, reference, "variant {variant} p={p}");
            }
        }
    }

    #[test]
    fn every_new_schedule_validates_and_simulates_on_both_models() {
        let bytes = 100_000;
        for p in [2usize, 6, 12, 16] {
            let programs = [
                rabenseifner_allreduce_schedule(p, bytes),
                rsag_allreduce_schedule(p, bytes),
                bruck_alltoall_schedule(p, 4096),
                pairwise_alltoall_schedule(p, 4096),
                scatter_allgather_bcast_schedule(p, bytes),
                pipelined_binomial_bcast_schedule(p, bytes, 16 * 1024),
                binomial_bcast_schedule(p, bytes),
                binomial_reduce_schedule(p, bytes),
                rsg_reduce_schedule(p, bytes),
            ];
            let alpha_beta = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
            let fabric = ec_netsim::ClusterPreset::skylake_fdr().with_nodes(p).engine();
            for prog in &programs {
                validate(prog, p).unwrap_or_else(|e| panic!("p={p}: {e}"));
                let t_ab = alpha_beta.makespan(prog).unwrap();
                let t_fab = fabric.makespan(prog).unwrap();
                assert!(t_ab > 0.0 && t_ab < 1.0, "alpha-beta makespan {t_ab} implausible at p={p}");
                assert!(t_fab > 0.0 && t_fab < 1.0, "fabric makespan {t_fab} implausible at p={p}");
            }
        }
    }

    #[test]
    fn bruck_trades_messages_for_volume_against_pairwise() {
        let p = 32;
        let block = 1024;
        let bruck = bruck_alltoall_schedule(p, block);
        let pairwise = pairwise_alltoall_schedule(p, block);
        // Bruck: one aggregated message per rank per log-round.
        let count_sends = |prog: &Program| {
            prog.ranks
                .iter()
                .flat_map(|r| r.ops.iter())
                .filter(|op| matches!(op, ec_netsim::Op::Isend { .. } | ec_netsim::Op::Send { .. }))
                .count()
        };
        assert_eq!(count_sends(&bruck), p * 5, "32 ranks -> 5 rounds, one message each");
        assert_eq!(count_sends(&pairwise), p * (p - 1));
        assert!(bruck.total_wire_bytes() > pairwise.total_wire_bytes(), "store-and-forward re-ships blocks");
        // The latency/bandwidth trade: Bruck wins for tiny blocks, loses for
        // large ones.
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
        let tiny_bruck = e.makespan(&bruck_alltoall_schedule(p, 8)).unwrap();
        let tiny_pairwise = e.makespan(&pairwise_alltoall_schedule(p, 8)).unwrap();
        assert!(tiny_bruck < tiny_pairwise, "Bruck ({tiny_bruck}) must win at 8-byte blocks ({tiny_pairwise})");
        let big_bruck = e.makespan(&bruck_alltoall_schedule(p, 256 * 1024)).unwrap();
        let big_pairwise = e.makespan(&pairwise_alltoall_schedule(p, 256 * 1024)).unwrap();
        assert!(big_pairwise < big_bruck, "pairwise ({big_pairwise}) must win at 256 KiB blocks ({big_bruck})");
    }

    #[test]
    fn bcast_variants_rank_as_expected_for_large_payloads() {
        let p = 16;
        let bytes = 8_000_000;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
        let plain = e.makespan(&binomial_bcast_schedule(p, bytes)).unwrap();
        let pipelined = e.makespan(&pipelined_binomial_bcast_schedule(p, bytes, 64 * 1024)).unwrap();
        let scatter = e.makespan(&scatter_allgather_bcast_schedule(p, bytes)).unwrap();
        // The van de Geijn algorithm is the large-message winner (2(P-1)/P
        // payload transfers on the critical path vs the tree's root fan-out).
        assert!(scatter < plain, "van de Geijn ({scatter}) must beat the plain tree ({plain})");
        assert!(scatter < pipelined, "van de Geijn ({scatter}) must beat the pipelined tree ({pipelined})");
        // Pipelining a binomial tree cannot beat the root's fan-out egress
        // (which already bounds the plain tree's critical path); the variant
        // must stay within per-segment overhead of the plain tree.
        assert!(pipelined < plain * 1.01, "pipelined ({pipelined}) must not regress the plain tree ({plain})");
    }

    #[test]
    fn rsg_reduce_beats_the_binomial_tree_for_large_payloads() {
        let p = 32;
        let bytes = 8_000_000;
        let e = Engine::new(ClusterSpec::homogeneous(p, 1), CostModel::skylake_fdr());
        let tree = e.makespan(&binomial_reduce_schedule(p, bytes)).unwrap();
        let rsg = e.makespan(&rsg_reduce_schedule(p, bytes)).unwrap();
        assert!(rsg < tree, "reduce-scatter+gather ({rsg}) must beat the binomial tree ({tree}) at 8 MB");
    }

    #[test]
    fn payloads_smaller_than_the_rank_count_still_work() {
        for p in [6usize, 12] {
            let n = 3; // fewer elements than ranks: some chunks are empty
            let want = expected_sum(p, n);
            let out = MpiWorld::new(p).run(|comm| {
                let mut data = input(comm.rank(), n);
                allreduce_reduce_scatter_allgather(comm, &mut data).unwrap();
                data
            });
            for data in &out {
                for (a, b) in data.iter().zip(want.iter()) {
                    assert!((a - b).abs() < 1e-9, "p={p}");
                }
            }
            let prog = rsag_allreduce_schedule(p, n as u64);
            validate(&prog, p).unwrap();
        }
    }
}
