//! A minimal threaded two-sided (MPI-like) communication layer.
//!
//! Every rank is a thread; point-to-point messages are `f64` vectors matched
//! by `(source, tag)` in FIFO order, with an unexpected-message queue exactly
//! like an MPI implementation.  This layer exists so the baseline collective
//! algorithms have something faithful to run on for correctness tests; the
//! performance comparison against the GASPI collectives is done in the
//! `ec-netsim` cost model, not here.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Rank identifier.
pub type Rank = usize;

/// Message tag.
pub type Tag = u32;

/// Errors returned by the two-sided layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// The destination or source rank does not exist.
    InvalidRank {
        /// Offending rank.
        rank: Rank,
        /// Number of ranks in the world.
        size: usize,
    },
    /// A blocking receive timed out (guards tests against deadlocks).
    Timeout,
    /// The world is shutting down.
    Disconnected,
    /// A received payload's length does not match the posted buffer range —
    /// a protocol/layout bug in a collective body, not a transport failure.
    LengthMismatch {
        /// Elements the receiver expected.
        expected: usize,
        /// Elements the sender shipped.
        got: usize,
    },
}

impl std::fmt::Display for MpiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpiError::InvalidRank { rank, size } => write!(f, "rank {rank} out of range ({size} ranks)"),
            MpiError::Timeout => write!(f, "receive timed out"),
            MpiError::Disconnected => write!(f, "communication world is shutting down"),
            MpiError::LengthMismatch { expected, got } => {
                write!(f, "received {got} elements where the posted buffer range holds {expected}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, MpiError>;

#[derive(Debug)]
struct Envelope {
    src: Rank,
    tag: Tag,
    payload: Vec<f64>,
}

/// Per-rank communicator handle.
#[derive(Debug)]
pub struct MpiComm {
    rank: Rank,
    size: usize,
    inbox: Receiver<Envelope>,
    peers: Arc<Vec<Sender<Envelope>>>,
    /// Messages that arrived before a matching receive was posted.
    unexpected: HashMap<(Rank, Tag), VecDeque<Vec<f64>>>,
    /// Guard timeout for blocking receives.
    timeout: Duration,
}

impl MpiComm {
    /// This rank's id.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Blocking send of `data` to `dst` with `tag`.
    ///
    /// The transport is buffered, so the call returns as soon as the message
    /// is enqueued (standard-mode MPI send semantics for buffered messages).
    pub fn send(&self, dst: Rank, tag: Tag, data: &[f64]) -> Result<()> {
        if dst >= self.size {
            return Err(MpiError::InvalidRank { rank: dst, size: self.size });
        }
        self.peers[dst]
            .send(Envelope { src: self.rank, tag, payload: data.to_vec() })
            .map_err(|_| MpiError::Disconnected)
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv(&mut self, src: Rank, tag: Tag) -> Result<Vec<f64>> {
        if src >= self.size {
            return Err(MpiError::InvalidRank { rank: src, size: self.size });
        }
        // 1. Check the unexpected-message queue.
        if let Some(q) = self.unexpected.get_mut(&(src, tag)) {
            if let Some(msg) = q.pop_front() {
                if q.is_empty() {
                    self.unexpected.remove(&(src, tag));
                }
                return Ok(msg);
            }
        }
        // 2. Drain the inbox until the matching message arrives.
        loop {
            match self.inbox.recv_timeout(self.timeout) {
                Ok(env) => {
                    if env.src == src && env.tag == tag {
                        return Ok(env.payload);
                    }
                    self.unexpected.entry((env.src, env.tag)).or_default().push_back(env.payload);
                }
                Err(RecvTimeoutError::Timeout) => return Err(MpiError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(MpiError::Disconnected),
            }
        }
    }

    /// Combined send + receive (the `MPI_Sendrecv` building block most
    /// baseline algorithms are written in).
    pub fn sendrecv(&mut self, dst: Rank, send_tag: Tag, data: &[f64], src: Rank, recv_tag: Tag) -> Result<Vec<f64>> {
        self.send(dst, send_tag, data)?;
        self.recv(src, recv_tag)
    }
}

/// Launcher for a fixed-size two-sided world.
#[derive(Debug, Clone)]
pub struct MpiWorld {
    size: usize,
    timeout: Duration,
}

impl MpiWorld {
    /// Create a world with `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world needs at least one rank");
        Self { size, timeout: Duration::from_secs(30) }
    }

    /// Replace the guard timeout used by blocking receives.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Run `f` once per rank and collect the results in rank order.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut MpiComm) -> T + Send + Sync,
    {
        let mut senders = Vec::with_capacity(self.size);
        let mut receivers = Vec::with_capacity(self.size);
        for _ in 0..self.size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let peers = Arc::new(senders);
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.size);
            for (rank, inbox) in receivers.into_iter().enumerate() {
                let peers = Arc::clone(&peers);
                let timeout = self.timeout;
                let size = self.size;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("mpi-rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let mut comm = MpiComm { rank, size, inbox, peers, unexpected: HashMap::new(), timeout };
                            f(&mut comm)
                        })
                        .expect("spawning rank thread"),
                );
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_round_trip() {
        let out = MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]).unwrap();
                Vec::new()
            } else {
                comm.recv(0, 7).unwrap()
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn messages_with_different_tags_do_not_mix() {
        let out = MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0]).unwrap();
                comm.send(1, 2, &[2.0]).unwrap();
                (vec![], vec![])
            } else {
                // Receive in reverse tag order: the tag-1 message must be
                // parked in the unexpected queue and still be delivered.
                let b = comm.recv(0, 2).unwrap();
                let a = comm.recv(0, 1).unwrap();
                (a, b)
            }
        });
        assert_eq!(out[1], (vec![1.0], vec![2.0]));
    }

    #[test]
    fn fifo_order_within_a_channel() {
        let out = MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..5 {
                    comm.send(1, 0, &[i as f64]).unwrap();
                }
                Vec::new()
            } else {
                (0..5).map(|_| comm.recv(0, 0).unwrap()[0]).collect()
            }
        });
        assert_eq!(out[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn sendrecv_exchanges_between_partners() {
        let out = MpiWorld::new(2).run(|comm| {
            let peer = 1 - comm.rank();
            let mine = vec![comm.rank() as f64; 3];
            comm.sendrecv(peer, 0, &mine, peer, 0).unwrap()
        });
        assert_eq!(out[0], vec![1.0; 3]);
        assert_eq!(out[1], vec![0.0; 3]);
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let out = MpiWorld::new(2).run(|comm| comm.send(5, 0, &[0.0]).unwrap_err());
        assert_eq!(out[0], MpiError::InvalidRank { rank: 5, size: 2 });
    }

    #[test]
    fn recv_timeout_reports_instead_of_hanging() {
        let out = MpiWorld::new(2).with_timeout(Duration::from_millis(20)).run(|comm| {
            if comm.rank() == 0 {
                comm.recv(1, 0).err()
            } else {
                None
            }
        });
        assert_eq!(out[0], Some(MpiError::Timeout));
    }
}
