//! # ec-baseline — MPI-like baseline collectives
//!
//! The paper evaluates its GASPI collectives against the collectives of a
//! vendor MPI library (Intel MPI): the default and binomial variants of
//! `MPI_Bcast` and `MPI_Reduce`, twelve `MPI_Allreduce` algorithm variants
//! and the default `MPI_Alltoall`.  This crate implements those baselines
//! from scratch so the comparison can be reproduced:
//!
//! * a small **threaded two-sided runtime** ([`comm`]) with blocking
//!   send/receive and tag matching, on which reference implementations of the
//!   baseline collectives run ([`collectives`]) — used for correctness
//!   cross-checks against the GASPI collectives;
//! * **schedule generators** ([`schedule`]) that express every baseline
//!   algorithm as an `ec-netsim` program with two-sided semantics
//!   (eager/rendezvous protocol, progress-engine bandwidth penalty,
//!   per-message matching overhead), which is what the figure-regeneration
//!   benches simulate;
//! * a **single-source variant library** ([`twosided`] + [`variants`]):
//!   the classic vendor algorithm variants (Rabenseifner allreduce, ring
//!   reduce-scatter+allgather, Bruck and pairwise AlltoAll, van de Geijn and
//!   pipelined-binomial Bcast, reduce-scatter+gather Reduce) written once
//!   against the [`twosided::TwoSided`] trait and executed both on the
//!   threaded runtime and as recorded simulator schedules — the candidate
//!   pool the `ec_bench` tuner auto-selects from.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collectives;
pub mod comm;
pub mod schedule;
pub mod twosided;
pub mod variants;

pub use collectives::{
    allreduce_recursive_doubling, allreduce_ring, alltoall_pairwise, bcast_binomial, reduce_binomial,
};
pub use comm::{MpiComm, MpiError, MpiWorld};
pub use schedule::allreduce::MpiAllreduceVariant;
pub use schedule::alltoall::mpi_alltoall_pairwise_schedule;
pub use schedule::bcast::{mpi_bcast_binomial_schedule, mpi_bcast_default_schedule};
pub use schedule::reduce::{mpi_reduce_binomial_schedule, mpi_reduce_default_schedule};
pub use schedule::source::{BinomialBcastSource, PairwiseAlltoallSource};
pub use twosided::{RecordingTwoSided, ThreadedTwoSided, TwoSided};
pub use variants::{
    allreduce_rabenseifner, allreduce_reduce_scatter_allgather, alltoall_bruck, bcast_pipelined_binomial,
    bcast_scatter_allgather, reduce_rsg,
};
