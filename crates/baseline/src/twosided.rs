//! Single-source substrate for the two-sided baseline collectives.
//!
//! The GASPI collectives are written once against `ec_comm::Transport` and
//! executed on a threaded backend or recorded into an `ec_netsim::Program`.
//! This module gives the **MPI-like baselines** the same treatment: the
//! [`TwoSided`] trait captures the two-sided vocabulary (blocking and
//! non-blocking sends, receives that land in or fold into a working buffer,
//! local staging copies), and every *new* baseline algorithm variant in
//! [`crate::variants`] is a single body generic over it.
//!
//! * [`ThreadedTwoSided`] runs the body on the real [`crate::comm`] runtime,
//!   moving `f64` payloads between rank threads — the correctness oracle;
//! * [`RecordingTwoSided`] replays the *same body* with payloads abstracted
//!   to element counts and records every operation into an
//!   `ec_netsim::Program` with two-sided semantics — the schedule the
//!   figure-regeneration benches and the `ec_bench::tuner` price.
//!
//! Because both worlds share one algorithm body, a variant's simulated
//! schedule can no longer drift from the code whose numerics are tested.
//!
//! ## Addressing model
//!
//! All ranges address *elements* of a single per-rank working buffer laid
//! out by the algorithm (payload plus any staging regions).  The threaded
//! backend interprets elements as `f64`s; the recorder multiplies lengths by
//! its configured element width to obtain wire bytes.  Empty ranges are
//! skipped symmetrically on both backends, so a zero-length chunk never
//! produces an unmatched message.

use std::ops::Range;

use ec_netsim::{Program, ProgramBuilder};

use crate::comm::{MpiComm, MpiError, Result, Tag};

/// Two-sided operations a baseline collective body is written against.
///
/// Every operation addresses elements of the rank's working buffer.  The
/// buffer layout (which ranges hold payload, which are staging space) is an
/// algorithm-level convention documented on each body in [`crate::variants`].
pub trait TwoSided {
    /// This rank's id.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn num_ranks(&self) -> usize;

    /// Blocking send of `elems` from the working buffer to `dst`.
    ///
    /// Use only for one-directional edges (tree parent/child traffic) where
    /// the receive is already posted or posted independently; symmetric
    /// exchanges must use [`TwoSided::isend`] so the rendezvous protocol of
    /// the simulated two-sided layer cannot deadlock.
    fn send(&mut self, dst: usize, tag: Tag, elems: Range<usize>) -> Result<()>;

    /// Non-blocking send of `elems` to `dst`; completion is awaited by
    /// [`TwoSided::wait_all_sends`].
    fn isend(&mut self, dst: usize, tag: Tag, elems: Range<usize>) -> Result<()>;

    /// Wait until all outstanding non-blocking sends of this rank completed.
    fn wait_all_sends(&mut self) -> Result<()>;

    /// Blocking receive from `src` overwriting `elems` of the working buffer.
    fn recv_copy(&mut self, src: usize, tag: Tag, elems: Range<usize>) -> Result<()>;

    /// Blocking receive from `src` folded (element-wise sum) into `elems`.
    fn recv_reduce(&mut self, src: usize, tag: Tag, elems: Range<usize>) -> Result<()>;

    /// Copy `src` to the range starting at `dst` within the working buffer
    /// (pack/unpack staging; ranges may overlap).
    fn local_copy(&mut self, dst: usize, src: Range<usize>) -> Result<()>;
}

/// [`TwoSided`] backend over the threaded [`crate::comm`] runtime: real
/// `f64` data, real blocking receives — the correctness oracle.
///
/// The runtime's sends are buffered (standard-mode MPI semantics for
/// buffered messages), so `isend` and `send` coincide and
/// `wait_all_sends` is a no-op.
#[derive(Debug)]
pub struct ThreadedTwoSided<'a, 'b> {
    comm: &'a mut MpiComm,
    buf: &'b mut [f64],
}

impl<'a, 'b> ThreadedTwoSided<'a, 'b> {
    /// Wrap `comm` with the given working buffer.
    pub fn new(comm: &'a mut MpiComm, buf: &'b mut [f64]) -> Self {
        Self { comm, buf }
    }
}

impl TwoSided for ThreadedTwoSided<'_, '_> {
    fn rank(&self) -> usize {
        self.comm.rank()
    }

    fn num_ranks(&self) -> usize {
        self.comm.size()
    }

    fn send(&mut self, dst: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if elems.is_empty() {
            return Ok(());
        }
        self.comm.send(dst, tag, &self.buf[elems])
    }

    fn isend(&mut self, dst: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        self.send(dst, tag, elems)
    }

    fn wait_all_sends(&mut self) -> Result<()> {
        Ok(())
    }

    fn recv_copy(&mut self, src: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if elems.is_empty() {
            return Ok(());
        }
        let msg = self.comm.recv(src, tag)?;
        if msg.len() != elems.len() {
            return Err(MpiError::LengthMismatch { expected: elems.len(), got: msg.len() });
        }
        self.buf[elems].copy_from_slice(&msg);
        Ok(())
    }

    fn recv_reduce(&mut self, src: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if elems.is_empty() {
            return Ok(());
        }
        let msg = self.comm.recv(src, tag)?;
        if msg.len() != elems.len() {
            return Err(MpiError::LengthMismatch { expected: elems.len(), got: msg.len() });
        }
        for (a, b) in self.buf[elems].iter_mut().zip(msg.iter()) {
            *a += *b;
        }
        Ok(())
    }

    fn local_copy(&mut self, dst: usize, src: Range<usize>) -> Result<()> {
        if src.is_empty() || dst == src.start {
            return Ok(());
        }
        self.buf.copy_within(src, dst);
        Ok(())
    }
}

/// [`TwoSided`] backend that records the algorithm's operations into an
/// `ec_netsim` program with two-sided semantics (eager/rendezvous protocol,
/// matching overheads), pricing payloads as `elements * elem_bytes`.
#[derive(Debug)]
pub struct RecordingTwoSided {
    builder: ProgramBuilder,
    rank: usize,
    elem_bytes: u64,
}

impl RecordingTwoSided {
    /// Start recording a program for `ranks` ranks whose buffer elements are
    /// `elem_bytes` bytes wide (8 for `f64` payloads, 1 to address raw
    /// bytes directly).
    pub fn new(ranks: usize, elem_bytes: u64) -> Self {
        assert!(elem_bytes > 0, "elements must have a non-zero width");
        Self { builder: ProgramBuilder::new(ranks), rank: 0, elem_bytes }
    }

    /// Switch the rank whose operations are being recorded.
    pub fn set_rank(&mut self, rank: usize) {
        assert!(rank < self.builder.num_ranks(), "rank {rank} out of range");
        self.rank = rank;
    }

    /// Finish recording and return the program.
    pub fn finish(self) -> Program {
        self.builder.build()
    }

    fn bytes(&self, elems: &Range<usize>) -> u64 {
        elems.len() as u64 * self.elem_bytes
    }
}

impl TwoSided for RecordingTwoSided {
    fn rank(&self) -> usize {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.builder.num_ranks()
    }

    fn send(&mut self, dst: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if !elems.is_empty() {
            let bytes = self.bytes(&elems);
            self.builder.send(self.rank, dst, bytes, tag);
        }
        Ok(())
    }

    fn isend(&mut self, dst: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if !elems.is_empty() {
            let bytes = self.bytes(&elems);
            self.builder.isend(self.rank, dst, bytes, tag);
        }
        Ok(())
    }

    fn wait_all_sends(&mut self) -> Result<()> {
        self.builder.wait_all_sends(self.rank);
        Ok(())
    }

    fn recv_copy(&mut self, src: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if !elems.is_empty() {
            let bytes = self.bytes(&elems);
            self.builder.recv(self.rank, src, bytes, tag);
        }
        Ok(())
    }

    fn recv_reduce(&mut self, src: usize, tag: Tag, elems: Range<usize>) -> Result<()> {
        if !elems.is_empty() {
            let bytes = self.bytes(&elems);
            self.builder.recv(self.rank, src, bytes, tag);
            self.builder.reduce(self.rank, bytes);
        }
        Ok(())
    }

    fn local_copy(&mut self, dst: usize, src: Range<usize>) -> Result<()> {
        if !src.is_empty() && dst != src.start {
            let bytes = self.bytes(&src);
            self.builder.copy(self.rank, bytes);
        }
        Ok(())
    }
}

/// Record the program produced by running `body` once per rank.
///
/// This is the schedule-generator entry point: the same `body` that runs on
/// [`ThreadedTwoSided`] inside an [`crate::comm::MpiWorld`] is replayed for
/// every rank id in turn and its operations are captured.
pub fn record(ranks: usize, elem_bytes: u64, mut body: impl FnMut(&mut RecordingTwoSided) -> Result<()>) -> Program {
    let mut rec = RecordingTwoSided::new(ranks, elem_bytes);
    for rank in 0..ranks {
        rec.set_rank(rank);
        body(&mut rec).expect("recording backend operations are infallible");
    }
    rec.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::MpiWorld;
    use ec_netsim::{validate, Op};

    /// Toy body: every rank folds its right neighbour's first two elements
    /// into its own, then stages a local copy.
    fn fold_right<T: TwoSided>(t: &mut T) -> Result<()> {
        let p = t.num_ranks();
        let rank = t.rank();
        if p <= 1 {
            return Ok(());
        }
        t.isend((rank + p - 1) % p, 7, 0..2)?;
        t.recv_reduce((rank + 1) % p, 7, 0..2)?;
        t.local_copy(2, 0..2)?;
        t.wait_all_sends()
    }

    #[test]
    fn threaded_and_recorded_backends_share_one_body() {
        let p = 4;
        let out = MpiWorld::new(p).run(|comm| {
            let mut buf = vec![comm.rank() as f64 + 1.0, 10.0, 0.0, 0.0];
            let mut t = ThreadedTwoSided::new(comm, &mut buf);
            fold_right(&mut t).unwrap();
            buf
        });
        for (rank, buf) in out.iter().enumerate() {
            let right = (rank + 1) % p;
            assert_eq!(buf[0], (rank + 1) as f64 + (right + 1) as f64);
            assert_eq!(buf[1], 20.0);
            assert_eq!(buf[2], buf[0], "staging copy must duplicate the folded value");
        }

        let prog = record(p, 8, fold_right);
        validate(&prog, p).unwrap();
        assert_eq!(prog.total_wire_bytes(), p as u64 * 2 * 8);
        // Each rank: isend + recv + reduce + copy + wait_all_sends.
        assert_eq!(prog.total_ops(), p * 5);
        assert!(matches!(prog.ranks[0].ops[0], Op::Isend { dst: 3, bytes: 16, tag: 7 }));
    }

    #[test]
    fn empty_ranges_are_skipped_symmetrically() {
        let body = |t: &mut RecordingTwoSided| {
            let rank = t.rank();
            let peer = (rank + 1) % t.num_ranks();
            t.send(peer, 0, 0..0)?;
            t.recv_copy((rank + t.num_ranks() - 1) % t.num_ranks(), 0, 3..3)?;
            t.local_copy(5, 1..1)?;
            t.local_copy(4, 4..6)
        };
        let prog = record(3, 8, body);
        validate(&prog, 3).unwrap();
        assert_eq!(prog.total_ops(), 0, "zero-length transfers and self-targeted copies leave no ops");
    }

    #[test]
    fn recorder_prices_elements_at_the_configured_width() {
        let prog = record(2, 1, |t| if t.rank() == 0 { t.send(1, 0, 0..100) } else { t.recv_copy(0, 0, 0..100) });
        assert_eq!(prog.total_wire_bytes(), 100);
        let prog8 = record(2, 8, |t| if t.rank() == 0 { t.send(1, 0, 0..100) } else { t.recv_copy(0, 0, 0..100) });
        assert_eq!(prog8.total_wire_bytes(), 800);
    }

    #[test]
    fn threaded_backend_rejects_length_mismatches() {
        let out = MpiWorld::new(2).run(|comm| {
            if comm.rank() == 0 {
                let mut buf = vec![1.0; 4];
                let mut t = ThreadedTwoSided::new(comm, &mut buf);
                t.send(1, 0, 0..4).unwrap();
                None
            } else {
                let mut buf = vec![0.0; 2];
                let mut t = ThreadedTwoSided::new(comm, &mut buf);
                Some(t.recv_copy(0, 0, 0..2).unwrap_err())
            }
        });
        assert_eq!(out[1], Some(MpiError::LengthMismatch { expected: 2, got: 4 }));
    }

    #[test]
    fn non_trivial_local_copies_are_priced() {
        let prog = record(1, 8, |t| t.local_copy(4, 0..4));
        assert_eq!(prog.total_ops(), 1);
        assert!(matches!(prog.ranks[0].ops[0], Op::Copy { bytes: 32 }));
    }
}
