//! [`RecordingTransport`]: the schedule-recorder backend emitting an
//! `ec_netsim::Program`, and [`RankRecorder`]: its single-rank sibling
//! emitting one rank's op stream for `ec_netsim::ProgramSource` generators.

use std::collections::HashMap;
use std::ops::Range;

use ec_netsim::{Op, Program, ProgramBuilder};
use ec_ssp::{Clock, SspPolicy};

use crate::error::Result;
use crate::op::ReduceOp;
use crate::transport::{NotifyId, Rank, SlotUse, Transport};

/// [`Transport`] backend that executes a collective algorithm with payloads
/// abstracted to byte counts and records every operation into an
/// [`ec_netsim::Program`].
///
/// The recorder impersonates one rank at a time: drive it with
/// [`RecordingTransport::set_rank`] through `0..ranks`, running the algorithm
/// body once per rank, then take the accumulated program with
/// [`RecordingTransport::finish`].  Element offsets are ignored (the cost
/// model has no notion of segment layout); element counts are multiplied by
/// the configured element width to obtain wire bytes.
///
/// Two operations record nothing by design, mirroring the paper's cost
/// model: [`Transport::local_copy`] and [`Transport::buffer_copy`] (unpacking
/// a landing zone is free; only reductions cost γ per byte).
#[derive(Debug, Clone)]
pub struct RecordingTransport {
    builder: ProgramBuilder,
    rank: Rank,
    elem_bytes: u64,
    /// Per [`Transport::wait_any`] id-set: how many arrivals were already
    /// linearized (see `wait_any` for the ordering contract).
    any_progress: HashMap<Vec<NotifyId>, usize>,
}

impl RecordingTransport {
    /// Start recording a program for `ranks` ranks whose payload elements are
    /// `elem_bytes` wide (8 for `f64` collectives, 1 for byte-granular ones).
    pub fn new(ranks: usize, elem_bytes: u64) -> Self {
        assert!(elem_bytes > 0, "elements must have a non-zero width");
        Self { builder: ProgramBuilder::new(ranks), rank: 0, elem_bytes, any_progress: HashMap::new() }
    }

    /// Switch the recorder to impersonate `rank` for the next algorithm run.
    pub fn set_rank(&mut self, rank: Rank) {
        assert!(rank < self.builder.num_ranks(), "rank {rank} out of range");
        self.rank = rank;
        self.any_progress.clear();
    }

    /// Finish recording and return the program.
    pub fn finish(self) -> Program {
        self.builder.build()
    }

    /// Exclusive upper bound of the notification ids recorded so far (see
    /// `ec_netsim::Program::notify_id_bound`).  Callers use this to reserve
    /// GASPI notification slots and the simulator uses it to size its dense
    /// per-rank notification counters.
    pub fn notify_id_bound(&self) -> NotifyId {
        self.builder.notify_id_bound()
    }

    fn bytes_of(&self, elems: usize) -> u64 {
        elems as u64 * self.elem_bytes
    }
}

impl Transport for RecordingTransport {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.builder.num_ranks()
    }

    fn put_notify(&mut self, dst: Rank, _dst_off: usize, src: Range<usize>, id: NotifyId) -> Result<()> {
        if src.is_empty() {
            self.builder.notify(self.rank, dst, id);
        } else {
            self.builder.put_notify(self.rank, dst, self.bytes_of(src.len()), id);
        }
        Ok(())
    }

    fn put_stamped(
        &mut self,
        dst: Rank,
        _dst_off: usize,
        src: Range<usize>,
        _stamp: Clock,
        id: NotifyId,
    ) -> Result<()> {
        // The clock stamp travels as part of the message header; the cost
        // model charges only for the payload, so a stamp-only message is a
        // payload-free notification.
        if src.is_empty() {
            self.builder.notify(self.rank, dst, id);
        } else {
            self.builder.put_notify(self.rank, dst, self.bytes_of(src.len()), id);
        }
        Ok(())
    }

    fn notify(&mut self, dst: Rank, id: NotifyId) -> Result<()> {
        self.builder.notify(self.rank, dst, id);
        Ok(())
    }

    fn wait_notify(&mut self, id: NotifyId) -> Result<()> {
        self.builder.wait_notify(self.rank, &[id]);
        Ok(())
    }

    fn wait_all(&mut self, ids: &[NotifyId]) -> Result<()> {
        if !ids.is_empty() {
            self.builder.wait_notify(self.rank, ids);
        }
        Ok(())
    }

    fn wait_any(&mut self, ids: &[NotifyId]) -> Result<NotifyId> {
        // Agree with the threaded backend on which sets are legal (empty or
        // non-contiguous sets would lose notifications on real GASPI).
        crate::transport::wait_set_bounds(ids)?;
        // Deterministic arrival order: complete the listed ids last-to-first
        // across consecutive calls.  In the binomial trees the later children
        // root the deeper subtrees, so this lets the simulated rank overlap
        // the early (shallow) contributions with the wait for the deep ones —
        // the same heuristic the hand-written seed schedules used.
        let served = self.any_progress.entry(ids.to_vec()).or_insert(0);
        let id = ids[ids.len() - 1 - *served];
        *served += 1;
        // A completed round clears its progress so a later collective in the
        // same recording can reuse the id set from scratch.
        if *served == ids.len() {
            self.any_progress.remove(ids);
        }
        self.builder.wait_notify(self.rank, &[id]);
        Ok(id)
    }

    fn local_reduce(&mut self, _src_off: usize, dst: Range<usize>, _op: ReduceOp) -> Result<()> {
        self.builder.reduce(self.rank, self.bytes_of(dst.len()));
        Ok(())
    }

    fn local_copy(&mut self, _src_off: usize, _dst: Range<usize>) -> Result<()> {
        Ok(())
    }

    fn buffer_copy(&mut self, _src: Range<usize>, _dst: Range<usize>) -> Result<()> {
        Ok(())
    }

    fn slot_reduce(
        &mut self,
        _slot_off: usize,
        len: usize,
        id: NotifyId,
        now: Clock,
        _policy: SspPolicy,
        _op: ReduceOp,
        _dst: Range<usize>,
    ) -> Result<SlotUse> {
        // Recorded schedules render the fully synchronous hypercube: every
        // step blocks for a fresh contribution and reduces it.
        self.builder.wait_notify(self.rank, &[id]);
        self.builder.reduce(self.rank, self.bytes_of(len));
        Ok(SlotUse { clock: now, waits: Vec::new() })
    }
}

/// [`Transport`] backend recording **one rank's** operations into a bare
/// `Vec<ec_netsim::Op>`.
///
/// [`RecordingTransport`] owns a full `ProgramBuilder` — one op list per
/// rank — so constructing it costs O(p) even when only a single rank's
/// stream is wanted.  A `ProgramSource` generator that replays a real
/// algorithm body once per `rank_ops` call would therefore pay O(p) per rank
/// and O(p²) per compilation; at the million-rank scale that is the whole
/// budget.  `RankRecorder` holds nothing but the recorded rank's op stream,
/// making each `rank_ops` call O(ops of that rank).
///
/// The recorded semantics mirror [`RecordingTransport`] exactly (empty puts
/// degrade to bare notifications, copies are free, `wait_any` linearizes
/// last-to-first, `slot_reduce` renders the synchronous wait + reduce), so a
/// generator built on it reproduces the recorded program byte-for-byte.
#[derive(Debug, Clone)]
pub struct RankRecorder {
    rank: Rank,
    num_ranks: usize,
    elem_bytes: u64,
    ops: Vec<Op>,
    /// Per [`Transport::wait_any`] id-set: arrivals already linearized (the
    /// same deterministic order as [`RecordingTransport::wait_any`]).
    any_progress: HashMap<Vec<NotifyId>, usize>,
}

impl RankRecorder {
    /// Start recording rank `rank` of a `ranks`-rank collective whose payload
    /// elements are `elem_bytes` wide.
    pub fn new(rank: Rank, ranks: usize, elem_bytes: u64) -> Self {
        assert!(elem_bytes > 0, "elements must have a non-zero width");
        assert!(rank < ranks, "rank {rank} out of range for {ranks} ranks");
        Self { rank, num_ranks: ranks, elem_bytes, ops: Vec::new(), any_progress: HashMap::new() }
    }

    /// Finish recording and return the rank's op stream in program order.
    pub fn finish(self) -> Vec<Op> {
        self.ops
    }

    fn bytes_of(&self, elems: usize) -> u64 {
        elems as u64 * self.elem_bytes
    }
}

impl Transport for RankRecorder {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    fn put_notify(&mut self, dst: Rank, _dst_off: usize, src: Range<usize>, id: NotifyId) -> Result<()> {
        if src.is_empty() {
            self.ops.push(Op::Notify { dst, notify: id });
        } else {
            self.ops.push(Op::PutNotify { dst, bytes: self.bytes_of(src.len()), notify: id });
        }
        Ok(())
    }

    fn put_stamped(
        &mut self,
        dst: Rank,
        _dst_off: usize,
        src: Range<usize>,
        _stamp: Clock,
        id: NotifyId,
    ) -> Result<()> {
        // As in `RecordingTransport`: the stamp is header, only the payload
        // is charged.
        if src.is_empty() {
            self.ops.push(Op::Notify { dst, notify: id });
        } else {
            self.ops.push(Op::PutNotify { dst, bytes: self.bytes_of(src.len()), notify: id });
        }
        Ok(())
    }

    fn notify(&mut self, dst: Rank, id: NotifyId) -> Result<()> {
        self.ops.push(Op::Notify { dst, notify: id });
        Ok(())
    }

    fn wait_notify(&mut self, id: NotifyId) -> Result<()> {
        self.ops.push(Op::WaitNotify { ids: vec![id] });
        Ok(())
    }

    fn wait_all(&mut self, ids: &[NotifyId]) -> Result<()> {
        if !ids.is_empty() {
            self.ops.push(Op::WaitNotify { ids: ids.to_vec() });
        }
        Ok(())
    }

    fn wait_any(&mut self, ids: &[NotifyId]) -> Result<NotifyId> {
        crate::transport::wait_set_bounds(ids)?;
        // Same deterministic linearization as `RecordingTransport::wait_any`:
        // listed ids complete last-to-first across consecutive calls.
        let served = self.any_progress.entry(ids.to_vec()).or_insert(0);
        let id = ids[ids.len() - 1 - *served];
        *served += 1;
        if *served == ids.len() {
            self.any_progress.remove(ids);
        }
        self.ops.push(Op::WaitNotify { ids: vec![id] });
        Ok(id)
    }

    fn local_reduce(&mut self, _src_off: usize, dst: Range<usize>, _op: ReduceOp) -> Result<()> {
        self.ops.push(Op::Reduce { bytes: self.bytes_of(dst.len()) });
        Ok(())
    }

    fn local_copy(&mut self, _src_off: usize, _dst: Range<usize>) -> Result<()> {
        Ok(())
    }

    fn buffer_copy(&mut self, _src: Range<usize>, _dst: Range<usize>) -> Result<()> {
        Ok(())
    }

    fn slot_reduce(
        &mut self,
        _slot_off: usize,
        len: usize,
        id: NotifyId,
        now: Clock,
        _policy: SspPolicy,
        _op: ReduceOp,
        _dst: Range<usize>,
    ) -> Result<SlotUse> {
        self.ops.push(Op::WaitNotify { ids: vec![id] });
        self.ops.push(Op::Reduce { bytes: self.bytes_of(len) });
        Ok(SlotUse { clock: now, waits: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_netsim::Op;

    #[test]
    fn records_puts_with_scaled_byte_counts() {
        let mut rec = RecordingTransport::new(2, 8);
        rec.set_rank(0);
        rec.put_notify(1, 0, 0..100, 4).unwrap();
        let prog = rec.finish();
        assert_eq!(prog.ranks[0].ops, vec![Op::PutNotify { dst: 1, bytes: 800, notify: 4 }]);
    }

    #[test]
    fn empty_put_records_a_bare_notification() {
        let mut rec = RecordingTransport::new(2, 8);
        rec.put_notify(1, 0, 5..5, 2).unwrap();
        let prog = rec.finish();
        assert_eq!(prog.ranks[0].ops, vec![Op::Notify { dst: 1, notify: 2 }]);
        assert_eq!(prog.total_wire_bytes(), 0);
    }

    #[test]
    fn copies_are_free_reductions_are_not() {
        let mut rec = RecordingTransport::new(1, 8);
        rec.local_copy(0, 0..64).unwrap();
        rec.buffer_copy(0..64, 64..128).unwrap();
        rec.local_reduce(0, 0..64, ReduceOp::Sum).unwrap();
        let prog = rec.finish();
        assert_eq!(prog.ranks[0].ops, vec![Op::Reduce { bytes: 512 }]);
    }

    #[test]
    fn wait_any_linearizes_last_to_first() {
        let mut rec = RecordingTransport::new(1, 1);
        let ids = [1u32, 2, 3];
        assert_eq!(rec.wait_any(&ids).unwrap(), 3);
        assert_eq!(rec.wait_any(&ids).unwrap(), 2);
        assert_eq!(rec.wait_any(&ids).unwrap(), 1);
        let prog = rec.finish();
        let waited: Vec<_> = prog.ranks[0]
            .ops
            .iter()
            .map(|op| match op {
                Op::WaitNotify { ids } => ids[0],
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(waited, vec![3, 2, 1]);
    }

    #[test]
    fn wait_any_progress_resets_after_a_completed_round() {
        // Two collectives recorded back-to-back for the same rank may reuse
        // the same id set; each full round restarts the linearization.
        let mut rec = RecordingTransport::new(1, 1);
        let ids = [1u32, 2];
        assert_eq!(rec.wait_any(&ids).unwrap(), 2);
        assert_eq!(rec.wait_any(&ids).unwrap(), 1);
        assert_eq!(rec.wait_any(&ids).unwrap(), 2);
        assert_eq!(rec.wait_any(&ids).unwrap(), 1);
    }

    #[test]
    fn set_rank_resets_wait_any_progress() {
        let mut rec = RecordingTransport::new(2, 1);
        let ids = [0u32, 1];
        assert_eq!(rec.wait_any(&ids).unwrap(), 1);
        rec.set_rank(1);
        assert_eq!(rec.wait_any(&ids).unwrap(), 1);
    }

    #[test]
    fn wait_any_rejects_invalid_sets() {
        use crate::CommError;
        let mut rec = RecordingTransport::new(1, 1);
        assert!(matches!(rec.wait_any(&[1, 4]), Err(CommError::InvalidWaitSet { .. })));
        assert!(matches!(rec.wait_any(&[]), Err(CommError::InvalidWaitSet { .. })));
        // Nothing was recorded for the rejected waits.
        assert_eq!(rec.finish().total_ops(), 0);
    }

    #[test]
    fn recorder_emits_the_notify_id_range() {
        let mut rec = RecordingTransport::new(2, 8);
        assert_eq!(rec.notify_id_bound(), 0);
        rec.put_notify(1, 0, 0..4, 11).unwrap();
        rec.set_rank(1);
        rec.wait_notify(11).unwrap();
        assert_eq!(rec.notify_id_bound(), 12);
        assert_eq!(rec.finish().notify_id_bound(), 12);
    }

    #[test]
    fn empty_stamped_put_records_a_bare_notification() {
        let mut rec = RecordingTransport::new(2, 8);
        rec.put_stamped(1, 0, 3..3, Clock::from(1), 4).unwrap();
        let prog = rec.finish();
        assert_eq!(prog.ranks[0].ops, vec![Op::Notify { dst: 1, notify: 4 }]);
        assert_eq!(prog.total_wire_bytes(), 0);
    }

    #[test]
    fn slot_reduce_records_the_synchronous_step() {
        let mut rec = RecordingTransport::new(2, 8);
        let u = rec.slot_reduce(0, 16, 7, Clock::from(3), SspPolicy::new(2), ReduceOp::Sum, 0..16).unwrap();
        assert_eq!(u.clock, Clock::from(3));
        assert!(u.waits.is_empty());
        let prog = rec.finish();
        assert_eq!(prog.ranks[0].ops, vec![Op::WaitNotify { ids: vec![7] }, Op::Reduce { bytes: 128 }]);
    }

    #[test]
    fn wait_all_with_no_ids_records_nothing() {
        let mut rec = RecordingTransport::new(1, 1);
        rec.wait_all(&[]).unwrap();
        assert_eq!(rec.finish().total_ops(), 0);
    }

    /// Drive one transport through every recordable operation.
    fn exercise<T: Transport>(t: &mut T) {
        let r = t.rank();
        let p = t.num_ranks();
        let peer = (r + 1) % p;
        t.put_notify(peer, 0, 0..64, 1).unwrap();
        t.put_notify(peer, 0, 5..5, 2).unwrap();
        t.put_stamped(peer, 0, 0..16, Clock::from(3), 3).unwrap();
        t.put_stamped(peer, 0, 9..9, Clock::from(3), 4).unwrap();
        t.notify(peer, 5).unwrap();
        t.wait_notify(1).unwrap();
        t.wait_all(&[2, 3]).unwrap();
        t.wait_all(&[]).unwrap();
        assert_eq!(t.wait_any(&[4, 5, 6]).unwrap(), 6);
        assert_eq!(t.wait_any(&[4, 5, 6]).unwrap(), 5);
        t.local_reduce(0, 0..32, ReduceOp::Sum).unwrap();
        t.local_copy(0, 0..32).unwrap();
        t.buffer_copy(0..8, 8..16).unwrap();
        t.slot_reduce(0, 16, 7, Clock::from(2), SspPolicy::new(1), ReduceOp::Sum, 0..16).unwrap();
    }

    #[test]
    fn rank_recorder_matches_the_program_recorder_rank_for_rank() {
        let ranks = 3;
        let mut full = RecordingTransport::new(ranks, 8);
        for r in 0..ranks {
            full.set_rank(r);
            exercise(&mut full);
        }
        let program = full.finish();
        for r in 0..ranks {
            let mut one = RankRecorder::new(r, ranks, 8);
            exercise(&mut one);
            assert_eq!(one.finish(), program.ranks[r].ops, "rank {r} streams must agree");
        }
    }

    #[test]
    fn rank_recorder_rejects_invalid_wait_sets() {
        use crate::CommError;
        let mut rec = RankRecorder::new(0, 1, 1);
        assert!(matches!(rec.wait_any(&[1, 4]), Err(CommError::InvalidWaitSet { .. })));
        assert!(matches!(rec.wait_any(&[]), Err(CommError::InvalidWaitSet { .. })));
        assert!(rec.finish().is_empty());
    }
}
