//! The [`Transport`] trait: the paper's communication vocabulary as an
//! abstract interface.

use std::ops::Range;
use std::time::Duration;

use ec_ssp::{Clock, SspPolicy};

use crate::error::{CommError, Result};
use crate::op::ReduceOp;

/// Rank identifier (0-based, dense) — mirrors `ec_gaspi::Rank`.
pub type Rank = usize;

/// Notification slot identifier — mirrors `ec_netsim::NotifyId` and
/// `ec_gaspi::NotificationId`.
pub type NotifyId = u32;

/// Check that a `wait_any` id set is a non-empty contiguous slot range (in
/// any order, without duplicates) and return its `(first, last)` bounds.
///
/// Shared by every backend so they agree on which sets are legal: a GASPI
/// `notify_waitsome` over `first..=last` would silently consume — and lose —
/// notifications in a gap of the range, so gapped (or duplicated) sets are
/// rejected up front with [`CommError::InvalidWaitSet`].
pub(crate) fn wait_set_bounds(ids: &[NotifyId]) -> Result<(NotifyId, NotifyId)> {
    let (Some(&first), Some(&last)) = (ids.iter().min(), ids.iter().max()) else {
        return Err(CommError::InvalidWaitSet { reason: "id set is empty" });
    };
    let span = (last - first) as usize + 1;
    if span != ids.len() {
        return Err(CommError::InvalidWaitSet { reason: "ids are not a contiguous slot range" });
    }
    // Equal length and span still admits aliasing (e.g. [1, 3, 3]): verify
    // every slot of the range occurs exactly once.
    let mut seen = vec![false; span];
    for &id in ids {
        let slot = (id - first) as usize;
        if seen[slot] {
            return Err(CommError::InvalidWaitSet { reason: "ids are not a contiguous slot range" });
        }
        seen[slot] = true;
    }
    Ok((first, last))
}

/// Outcome of one SSP stamped-slot receive (see [`Transport::slot_reduce`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotUse {
    /// Logical clock stamped on the contribution that was folded in.
    pub clock: Clock,
    /// Wall-clock duration of every blocking wait performed before the slot
    /// became acceptable (empty when a remembered contribution was used).
    pub waits: Vec<Duration>,
}

/// The communication surface a collective algorithm is written against.
///
/// A transport represents **one rank's view** of one collective invocation:
/// `rank()` identifies the rank the algorithm body is currently executing
/// (threaded backend) or being recorded for (recording backend).  All offsets
/// and ranges are in payload *elements*; the backend fixes the element width
/// (8-byte `f64`s for the value-carrying collectives, single bytes for
/// byte-granular ones).
///
/// The methods map 1:1 onto the paper's GASPI vocabulary:
///
/// | method                         | GASPI equivalent                              |
/// |--------------------------------|-----------------------------------------------|
/// | [`put_notify`]                 | `gaspi_write_notify`                           |
/// | [`notify`]                     | `gaspi_notify` (payload-free)                  |
/// | [`wait_notify`] / [`wait_all`] | `gaspi_notify_waitsome` + `gaspi_notify_reset` |
/// | [`wait_any`]                   | `gaspi_notify_waitsome` over a slot range      |
/// | [`local_reduce`]               | local reduction of a landed contribution       |
///
/// [`put_notify`]: Transport::put_notify
/// [`notify`]: Transport::notify
/// [`wait_notify`]: Transport::wait_notify
/// [`wait_all`]: Transport::wait_all
/// [`wait_any`]: Transport::wait_any
/// [`local_reduce`]: Transport::local_reduce
pub trait Transport {
    /// The rank this transport currently speaks for.
    fn rank(&self) -> Rank;

    /// Number of ranks participating in the collective.
    fn num_ranks(&self) -> usize;

    /// One-sided write of the local payload range `src` into `dst`'s segment
    /// at element offset `dst_off`, followed by notification `id`
    /// (`gaspi_write_notify`: the notification becomes visible only after the
    /// data).  An empty `src` range degrades to a payload-free [`Transport::notify`] in
    /// every backend — zero-byte puts never reach the wire or the simulator.
    fn put_notify(&mut self, dst: Rank, dst_off: usize, src: Range<usize>, id: NotifyId) -> Result<()>;

    /// Like [`Transport::put_notify`] but prefixes the payload with a logical-clock
    /// stamp occupying one element at `dst_off` (the SSP message layout).
    /// Recording backends count only the payload bytes, matching the cost
    /// model's view that the stamp is part of the header — an empty payload
    /// is therefore recorded as a payload-free notification (the threaded
    /// backend still writes the stamp element so the clock lands).
    fn put_stamped(&mut self, dst: Rank, dst_off: usize, src: Range<usize>, stamp: Clock, id: NotifyId) -> Result<()>;

    /// Payload-free notification (`gaspi_notify`).
    fn notify(&mut self, dst: Rank, id: NotifyId) -> Result<()>;

    /// Block until notification `id` arrives, then consume (reset) it.
    fn wait_notify(&mut self, id: NotifyId) -> Result<()>;

    /// Block until **all** notifications in `ids` have arrived, consuming
    /// each.  Backends may realize this as one composite wait (the simulator
    /// does, paying a single notification overhead) or as a sequence of
    /// single waits (the threaded runtime does).
    fn wait_all(&mut self, ids: &[NotifyId]) -> Result<()>;

    /// Block until **one** notification of `ids` arrives; consume and return
    /// it.  The threaded backend returns them in true arrival order; the
    /// recording backend linearizes arrival deterministically by completing
    /// the listed ids last-to-first across consecutive calls, which mirrors
    /// the overlap heuristic of the simulated schedules (contributions of
    /// shallow subtrees land first).  `ids` must be a non-empty contiguous
    /// slot range; every backend rejects other sets with
    /// [`crate::CommError::InvalidWaitSet`].
    fn wait_any(&mut self, ids: &[NotifyId]) -> Result<NotifyId>;

    /// Fold `dst.len()` elements landed at segment offset `src_off` into the
    /// local payload range `dst` with `op`.
    fn local_reduce(&mut self, src_off: usize, dst: Range<usize>, op: ReduceOp) -> Result<()>;

    /// Copy `dst.len()` elements landed at segment offset `src_off` into the
    /// local payload range `dst`.  Recording backends treat this as free:
    /// unpacking a landing zone into the user buffer is not part of the
    /// paper's cost model (only reductions cost γ per byte).
    fn local_copy(&mut self, src_off: usize, dst: Range<usize>) -> Result<()>;

    /// Copy between local payload ranges without touching the network (e.g.
    /// a rank's own AlltoAll block moving from its send to its receive
    /// buffer).  Free for recording backends.
    fn buffer_copy(&mut self, src: Range<usize>, dst: Range<usize>) -> Result<()>;

    /// The SSP stamped-slot receive of Algorithm 1: consult the dedicated
    /// receive slot at `slot_off` (one stamp element followed by `len` data
    /// elements), **block on notification `id` only while** the remembered
    /// contribution is staler than `policy` allows for a worker at `now`,
    /// then fold the accepted contribution into the payload range `dst`.
    ///
    /// Recording backends render the fully synchronous structure (always one
    /// wait, then the reduction) — exactly the hypercube schedule the paper
    /// uses to explain the collective's cost.
    #[allow(clippy::too_many_arguments)]
    fn slot_reduce(
        &mut self,
        slot_off: usize,
        len: usize,
        id: NotifyId,
        now: Clock,
        policy: SspPolicy,
        op: ReduceOp,
        dst: Range<usize>,
    ) -> Result<SlotUse>;
}
