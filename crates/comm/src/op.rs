//! Element-wise reduction operators.

/// Reduction operator applied element-wise to `f64` vectors.
///
/// The paper's experiments use a global sum; the other operators exist so
/// that the collectives are usable as a general library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise addition.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Combine two scalars.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The operator's identity element (the value that leaves the other
    /// operand unchanged).
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Sum => 0.0,
            ReduceOp::Prod => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Reduce `other` into `acc` element-wise over the common prefix.
    ///
    /// Only `min(acc.len(), other.len())` elements are touched; this is what
    /// the threshold-based eventually consistent collectives rely on when a
    /// contribution carries only a fraction of the payload.
    pub fn accumulate(self, acc: &mut [f64], other: &[f64]) {
        let n = acc.len().min(other.len());
        for i in 0..n {
            acc[i] = self.combine(acc[i], other[i]);
        }
    }

    /// Reduce a whole slice to a scalar (used in tests and examples).
    pub fn fold(self, values: &[f64]) -> f64 {
        values.iter().copied().fold(self.identity(), |a, b| self.combine(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn combine_matches_semantics() {
        assert_eq!(ReduceOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.combine(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.combine(2.0, 3.0), 3.0);
    }

    #[test]
    fn accumulate_touches_only_common_prefix() {
        let mut acc = vec![1.0, 1.0, 1.0, 1.0];
        ReduceOp::Sum.accumulate(&mut acc, &[10.0, 10.0]);
        assert_eq!(acc, vec![11.0, 11.0, 1.0, 1.0]);
    }

    #[test]
    fn fold_of_empty_slice_is_identity() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
            assert_eq!(op.fold(&[]), op.identity());
        }
    }

    proptest! {
        #[test]
        fn identity_is_neutral(op_idx in 0usize..4, v in -1e12f64..1e12) {
            let op = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max][op_idx];
            prop_assert_eq!(op.combine(op.identity(), v), v);
            prop_assert_eq!(op.combine(v, op.identity()), v);
        }

        #[test]
        fn combine_is_commutative(op_idx in 0usize..4, a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let op = [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max][op_idx];
            prop_assert_eq!(op.combine(a, b), op.combine(b, a));
        }

        #[test]
        fn min_max_bound_inputs(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            prop_assert!(ReduceOp::Min.combine(a, b) <= a && ReduceOp::Min.combine(a, b) <= b);
            prop_assert!(ReduceOp::Max.combine(a, b) >= a && ReduceOp::Max.combine(a, b) >= b);
        }
    }
}
