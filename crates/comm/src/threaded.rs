//! [`ThreadedTransport`]: the real-data backend over `ec_gaspi::Context`.

use std::ops::Range;
use std::time::Instant;

use ec_gaspi::{Context, SegmentId};
use ec_ssp::{Clock, SspPolicy};

use crate::error::{CommError, Result};
use crate::op::ReduceOp;
use crate::transport::{NotifyId, Rank, SlotUse, Transport};

/// The payload a threaded transport operates on.
///
/// Value-carrying collectives (allreduce, broadcast, reduce) work in place on
/// a single `f64` buffer; byte-granular collectives (AlltoAll) use a distinct
/// send/receive pair addressed in bytes.
#[derive(Debug)]
enum Payload<'d> {
    /// In-place `f64` working buffer; element = one double (8 bytes).
    Elems(&'d mut [f64]),
    /// Byte-granular send/receive pair; element = one byte.
    Bytes {
        /// Read-only source of outgoing [`Transport::put_notify`] ranges.
        send: &'d [u8],
        /// Destination of [`Transport::local_copy`] / [`Transport::buffer_copy`].
        recv: &'d mut [u8],
    },
}

/// [`Transport`] backend that executes the algorithm on the threaded GASPI
/// runtime, moving real data between rank threads.
///
/// One instance is created per rank per collective call and borrows the
/// caller's payload for the duration of the call.
#[derive(Debug)]
pub struct ThreadedTransport<'a> {
    ctx: &'a Context,
    segment: SegmentId,
    payload: Payload<'a>,
}

impl<'a> ThreadedTransport<'a> {
    /// Transport over an in-place `f64` payload (element = one double).
    pub fn elems(ctx: &'a Context, segment: SegmentId, data: &'a mut [f64]) -> Self {
        Self { ctx, segment, payload: Payload::Elems(data) }
    }

    /// Transport over a byte-granular send/receive pair (element = one byte).
    pub fn bytes(ctx: &'a Context, segment: SegmentId, send: &'a [u8], recv: &'a mut [u8]) -> Self {
        Self { ctx, segment, payload: Payload::Bytes { send, recv } }
    }

    /// Bytes per payload element of this transport.
    fn elem_bytes(&self) -> usize {
        match self.payload {
            Payload::Elems(_) => 8,
            Payload::Bytes { .. } => 1,
        }
    }
}

impl Transport for ThreadedTransport<'_> {
    fn rank(&self) -> Rank {
        self.ctx.rank()
    }

    fn num_ranks(&self) -> usize {
        self.ctx.num_ranks()
    }

    fn put_notify(&mut self, dst: Rank, dst_off: usize, src: Range<usize>, id: NotifyId) -> Result<()> {
        if src.is_empty() {
            return self.notify(dst, id);
        }
        let byte_off = dst_off * self.elem_bytes();
        match &self.payload {
            Payload::Elems(buf) => {
                self.ctx.write_notify_f64s(dst, self.segment, byte_off, &buf[src], id, 1, 0)?;
            }
            Payload::Bytes { send, .. } => {
                self.ctx.write_notify(dst, self.segment, byte_off, &send[src], id, 1, 0)?;
            }
        }
        Ok(())
    }

    fn put_stamped(&mut self, dst: Rank, dst_off: usize, src: Range<usize>, stamp: Clock, id: NotifyId) -> Result<()> {
        let Payload::Elems(buf) = &self.payload else {
            return Err(CommError::UnsupportedOp { op: "put_stamped" });
        };
        let mut message = Vec::with_capacity(src.len() + 1);
        message.push(stamp.value() as f64);
        message.extend_from_slice(&buf[src]);
        self.ctx.write_notify_f64s(dst, self.segment, dst_off * 8, &message, id, 1, 0)?;
        Ok(())
    }

    fn notify(&mut self, dst: Rank, id: NotifyId) -> Result<()> {
        self.ctx.notify(dst, self.segment, id, 1, 0)?;
        Ok(())
    }

    fn wait_notify(&mut self, id: NotifyId) -> Result<()> {
        self.ctx.notify_waitsome(self.segment, id, 1, None)?;
        self.ctx.notify_reset(self.segment, id)?;
        Ok(())
    }

    fn wait_all(&mut self, ids: &[NotifyId]) -> Result<()> {
        for &id in ids {
            self.wait_notify(id)?;
        }
        Ok(())
    }

    fn wait_any(&mut self, ids: &[NotifyId]) -> Result<NotifyId> {
        // With a gap in the range, waitsome could consume (and lose) a
        // notification the caller never listed — reject such sets up front.
        let (first, last) = crate::transport::wait_set_bounds(ids)?;
        let id = self.ctx.notify_waitsome(self.segment, first, last - first + 1, None)?;
        self.ctx.notify_reset(self.segment, id)?;
        Ok(id)
    }

    fn local_reduce(&mut self, src_off: usize, dst: Range<usize>, op: ReduceOp) -> Result<()> {
        let Payload::Elems(buf) = &mut self.payload else {
            return Err(CommError::UnsupportedOp { op: "local_reduce" });
        };
        let incoming = self.ctx.segment_read_f64s(self.segment, src_off * 8, dst.len())?;
        op.accumulate(&mut buf[dst], &incoming);
        Ok(())
    }

    fn local_copy(&mut self, src_off: usize, dst: Range<usize>) -> Result<()> {
        let byte_off = src_off * self.elem_bytes();
        match &mut self.payload {
            Payload::Elems(buf) => {
                let incoming = self.ctx.segment_read_f64s(self.segment, byte_off, dst.len())?;
                buf[dst].copy_from_slice(&incoming);
            }
            Payload::Bytes { recv, .. } => {
                self.ctx.segment_read(self.segment, byte_off, &mut recv[dst])?;
            }
        }
        Ok(())
    }

    fn buffer_copy(&mut self, src: Range<usize>, dst: Range<usize>) -> Result<()> {
        match &mut self.payload {
            Payload::Elems(buf) => {
                if src != dst {
                    buf.copy_within(src, dst.start);
                }
            }
            Payload::Bytes { send, recv } => {
                recv[dst].copy_from_slice(&send[src]);
            }
        }
        Ok(())
    }

    fn slot_reduce(
        &mut self,
        slot_off: usize,
        len: usize,
        id: NotifyId,
        now: Clock,
        policy: SspPolicy,
        op: ReduceOp,
        dst: Range<usize>,
    ) -> Result<SlotUse> {
        let Payload::Elems(_) = &self.payload else {
            return Err(CommError::UnsupportedOp { op: "slot_reduce" });
        };
        let mut waits = Vec::new();
        loop {
            // One locked read keeps the stamp and its data consistent.
            let slot = self.ctx.segment_read_f64s(self.segment, slot_off * 8, len + 1)?;
            let slot_clock = Clock::from(slot[0] as i64);
            if policy.is_acceptable(now, slot_clock) {
                let Payload::Elems(buf) = &mut self.payload else { unreachable!() };
                op.accumulate(&mut buf[dst], &slot[1..]);
                return Ok(SlotUse { clock: slot_clock, waits });
            }
            // Too stale: block until the partner's next update lands.
            let t0 = Instant::now();
            self.ctx.notify_waitsome(self.segment, id, 1, None)?;
            self.ctx.notify_reset(self.segment, id)?;
            waits.push(t0.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_gaspi::{GaspiConfig, Job};

    const SEG: SegmentId = 1;

    #[test]
    fn put_notify_moves_real_doubles() {
        let out = Job::new(GaspiConfig::new(2))
            .run(|ctx| {
                ctx.segment_create(SEG, 64).unwrap();
                ctx.barrier();
                let mut data = if ctx.rank() == 0 { vec![1.0, 2.0, 3.0] } else { vec![0.0; 3] };
                let mut t = ThreadedTransport::elems(ctx, SEG, &mut data);
                if t.rank() == 0 {
                    t.put_notify(1, 0, 0..3, 5).unwrap();
                } else {
                    t.wait_notify(5).unwrap();
                    t.local_copy(0, 0..3).unwrap();
                }
                data
            })
            .unwrap();
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_put_degrades_to_bare_notification() {
        let out = Job::new(GaspiConfig::new(2))
            .run(|ctx| {
                ctx.segment_create(SEG, 64).unwrap();
                ctx.barrier();
                let mut data = vec![7.0; 4];
                let mut t = ThreadedTransport::elems(ctx, SEG, &mut data);
                let peer = 1 - t.rank();
                t.put_notify(peer, 0, 2..2, 0).unwrap();
                t.wait_notify(0).unwrap();
                data
            })
            .unwrap();
        // No data moved, but both ranks saw the notification and completed.
        assert!(out.iter().all(|d| d == &vec![7.0; 4]));
    }

    #[test]
    fn wait_any_rejects_non_contiguous_sets_like_the_recorder() {
        use crate::RecordingTransport;
        // Both backends must agree: gapped, duplicated and empty id sets are
        // rejected with `InvalidWaitSet` instead of panicking (threaded) or
        // being silently accepted (recorder).
        let bad_sets: [&[NotifyId]; 3] = [&[1, 3], &[1, 3, 3], &[]];
        for ids in bad_sets {
            let ids_owned = ids.to_vec();
            let threaded = Job::new(GaspiConfig::new(1))
                .run(move |ctx| {
                    ctx.segment_create(SEG, 16).unwrap();
                    let mut data = vec![0.0; 2];
                    let mut t = ThreadedTransport::elems(ctx, SEG, &mut data);
                    t.wait_any(&ids_owned)
                })
                .unwrap()[0]
                .clone();
            let mut rec = RecordingTransport::new(1, 8);
            let recorded = rec.wait_any(ids);
            assert!(matches!(threaded, Err(CommError::InvalidWaitSet { .. })), "threaded accepted {ids:?}");
            assert_eq!(threaded, recorded, "backends disagree on {ids:?}");
        }
    }

    #[test]
    fn wait_any_accepts_contiguous_sets_in_any_order() {
        let out = Job::new(GaspiConfig::new(2))
            .run(|ctx| {
                ctx.segment_create(SEG, 16).unwrap();
                ctx.barrier();
                let mut data = vec![0.0; 2];
                let mut t = ThreadedTransport::elems(ctx, SEG, &mut data);
                let peer = 1 - t.rank();
                t.notify(peer, 3).unwrap();
                // Unsorted but contiguous {2, 3, 4}: legal for both backends.
                t.wait_any(&[4, 2, 3])
            })
            .unwrap();
        for r in out {
            assert_eq!(r, Ok(3));
        }
    }

    #[test]
    fn local_reduce_folds_landed_contribution() {
        let out = Job::new(GaspiConfig::new(2))
            .run(|ctx| {
                ctx.segment_create(SEG, 64).unwrap();
                ctx.barrier();
                let mut data = vec![10.0, 20.0];
                let mut t = ThreadedTransport::elems(ctx, SEG, &mut data);
                let peer = 1 - t.rank();
                t.put_notify(peer, 0, 0..2, 3).unwrap();
                t.wait_notify(3).unwrap();
                t.local_reduce(0, 0..2, ReduceOp::Sum).unwrap();
                data
            })
            .unwrap();
        assert_eq!(out[0], vec![20.0, 40.0]);
        assert_eq!(out[1], vec![20.0, 40.0]);
    }

    #[test]
    fn byte_payload_rejects_float_reduction() {
        let out = Job::new(GaspiConfig::new(1))
            .run(|ctx| {
                ctx.segment_create(SEG, 16).unwrap();
                let send = vec![1u8; 8];
                let mut recv = vec![0u8; 8];
                let mut t = ThreadedTransport::bytes(ctx, SEG, &send, &mut recv);
                t.local_reduce(0, 0..8, ReduceOp::Sum)
            })
            .unwrap();
        assert_eq!(out[0], Err(CommError::UnsupportedOp { op: "local_reduce" }));
    }

    #[test]
    fn buffer_copy_moves_between_send_and_recv() {
        let out = Job::new(GaspiConfig::new(1))
            .run(|ctx| {
                ctx.segment_create(SEG, 16).unwrap();
                let send = vec![9u8, 8, 7, 6];
                let mut recv = vec![0u8; 4];
                let mut t = ThreadedTransport::bytes(ctx, SEG, &send, &mut recv);
                t.buffer_copy(1..3, 0..2).unwrap();
                recv
            })
            .unwrap();
        assert_eq!(out[0], vec![8, 7, 0, 0]);
    }

    #[test]
    fn stamped_slot_reduce_accepts_fresh_contribution() {
        let out = Job::new(GaspiConfig::new(2))
            .run(|ctx| {
                ctx.segment_create(SEG, 64).unwrap();
                ctx.barrier();
                let mut data = vec![1.0, 1.0];
                let mut t = ThreadedTransport::elems(ctx, SEG, &mut data);
                let peer = 1 - t.rank();
                let clock = Clock::from(1);
                t.put_stamped(peer, 0, 0..2, clock, 0).unwrap();
                let u = t.slot_reduce(0, 2, 0, clock, SspPolicy::new(0), ReduceOp::Sum, 0..2).unwrap();
                (data, u.clock)
            })
            .unwrap();
        for (data, clock) in out {
            assert_eq!(data, vec![2.0, 2.0]);
            assert_eq!(clock, Clock::from(1));
        }
    }
}
