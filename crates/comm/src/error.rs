//! Error type shared by all transport backends.

use ec_gaspi::GaspiError;

/// Errors surfaced by a [`crate::Transport`] backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The underlying GASPI runtime reported an error (threaded backend).
    Runtime(GaspiError),
    /// The backend's payload model cannot express the requested operation
    /// (e.g. a floating-point reduction over a raw byte payload).
    UnsupportedOp {
        /// Name of the offending operation.
        op: &'static str,
    },
    /// A `wait_any` id set is unusable: empty, or not a contiguous slot
    /// range.  With a gap (or duplicate) in the range, a GASPI
    /// `notify_waitsome` could consume — and lose — a notification the
    /// caller never listed, so every backend rejects such sets up front.
    InvalidWaitSet {
        /// Why the set was rejected.
        reason: &'static str,
    },
}

impl From<GaspiError> for CommError {
    fn from(e: GaspiError) -> Self {
        CommError::Runtime(e)
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Runtime(e) => write!(f, "transport runtime error: {e}"),
            CommError::UnsupportedOp { op } => {
                write!(f, "operation `{op}` is not supported by this transport's payload model")
            }
            CommError::InvalidWaitSet { reason } => {
                write!(f, "invalid wait_any id set: {reason}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Result alias for transport operations.
pub type Result<T> = std::result::Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaspi_errors_convert() {
        let e: CommError = GaspiError::Timeout.into();
        assert_eq!(e, CommError::Runtime(GaspiError::Timeout));
        assert!(e.to_string().contains("timed out"));
    }

    #[test]
    fn unsupported_op_names_the_operation() {
        let e = CommError::UnsupportedOp { op: "local_reduce" };
        assert!(e.to_string().contains("local_reduce"));
    }

    #[test]
    fn invalid_wait_set_states_the_reason() {
        let e = CommError::InvalidWaitSet { reason: "ids are not a contiguous slot range" };
        assert!(e.to_string().contains("contiguous"));
    }
}
