//! # ec-comm — the `Transport` layer shared by execution and simulation
//!
//! The paper's central observation is that every collective is nothing but a
//! pattern of one-sided `gaspi_write_notify` / `gaspi_notify_waitsome` /
//! `gaspi_notify_reset` calls plus local reductions.  This crate captures that
//! vocabulary as the [`Transport`] trait so each collective algorithm can be
//! written **once** and executed against two very different substrates:
//!
//! * [`ThreadedTransport`] wraps an `ec_gaspi::Context` and moves real bytes
//!   between rank threads — this is what the in-process collectives in
//!   `ec_collectives` run on;
//! * [`RecordingTransport`] executes the *same algorithm code* with payloads
//!   abstracted to byte counts and records every operation into an
//!   `ec_netsim::Program`, which is how the paper's cluster-scale figures are
//!   regenerated without a cluster.
//!
//! Because the two backends share one algorithm body, the threaded collectives
//! and the simulated schedules can no longer drift apart: a new collective,
//! notification layout or overlap trick is implemented in one place and both
//! worlds pick it up.
//!
//! ## Addressing model
//!
//! All offsets and ranges are expressed in *elements* of the payload — the
//! transport decides what an element is.  The threaded backend interprets
//! elements as `f64`s (or raw bytes for byte-granular collectives such as
//! AlltoAll); the recorder only multiplies lengths by its configured element
//! width to obtain wire bytes.  `wait_notify` subsumes the GASPI pair
//! `gaspi_notify_waitsome` + `gaspi_notify_reset`: a consumed notification is
//! always reset.
//!
//! ## Example: one algorithm, two backends
//!
//! A toy "shift right" collective written once against [`Transport`] and then
//! recorded into a simulator program:
//!
//! ```
//! use ec_comm::{RecordingTransport, Transport};
//!
//! /// Every rank sends its first `n` elements to the next rank and waits for
//! /// the elements arriving from the previous one.
//! fn shift_right<T: Transport>(t: &mut T, n: usize) -> ec_comm::Result<()> {
//!     let (rank, p) = (t.rank(), t.num_ranks());
//!     t.put_notify((rank + 1) % p, 0, 0..n, 0)?;
//!     t.wait_notify(0)?;
//!     t.local_copy(0, 0..n)
//! }
//!
//! // Record the schedule for 4 ranks moving 1024 doubles each.
//! let mut rec = RecordingTransport::new(4, 8);
//! for rank in 0..4 {
//!     rec.set_rank(rank);
//!     shift_right(&mut rec, 1024).unwrap();
//! }
//! let program = rec.finish();
//! assert_eq!(program.total_wire_bytes(), 4 * 1024 * 8);
//! ec_netsim::validate(&program, 4).unwrap();
//! ```
//!
//! The exact same `shift_right` body runs unmodified on a
//! [`ThreadedTransport`] inside an `ec_gaspi::Job`, where `put_notify`
//! becomes a real one-sided write.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod op;
pub mod recording;
pub mod threaded;
pub mod transport;

pub use error::{CommError, Result};
pub use op::ReduceOp;
pub use recording::{RankRecorder, RecordingTransport};
pub use threaded::ThreadedTransport;
pub use transport::{NotifyId, Rank, SlotUse, Transport};
