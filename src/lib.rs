//! # ec-collectives-suite — reproduction of "Efficient and Eventually Consistent Collective Operations"
//!
//! This facade crate re-exports the individual crates of the workspace so
//! that the examples and integration tests (and downstream users who want a
//! single dependency) can reach every layer of the system:
//!
//! * [`gaspi`] — the threaded GASPI-like one-sided runtime (segments,
//!   notifications, `write_notify`).
//! * [`ssp`] — Stale Synchronous Parallel clocks, slack policies and wait
//!   statistics.
//! * [`comm`] — the `Transport` trait capturing the paper's communication
//!   vocabulary, with a threaded backend (real data movement) and a
//!   recording backend (schedule generation for the simulator).
//! * [`collectives`] — the paper's collectives: SSP hypercube allreduce,
//!   threshold broadcast/reduce, segmented pipelined ring allreduce and the
//!   direct AlltoAll — each algorithm body written once over
//!   `comm::Transport` and replayed as an `ec-netsim` schedule generator.
//! * [`baseline`] — MPI-like baseline collectives and the twelve
//!   `MPI_Allreduce` algorithm variants the paper compares against.
//! * [`netsim`] — the discrete-event cluster simulator used to regenerate
//!   the paper's cluster-scale figures.
//! * [`mlapp`] — matrix factorization with SGD over the SSP allreduce
//!   (Figures 6–7).
//! * [`fftapp`] — the distributed FFT mini-app whose transpose is the
//!   AlltoAll workload of Figure 13.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ec_baseline as baseline;
pub use ec_collectives as collectives;
pub use ec_comm as comm;
pub use ec_fftapp as fftapp;
pub use ec_gaspi as gaspi;
pub use ec_mlapp as mlapp;
pub use ec_netsim as netsim;
pub use ec_ssp as ssp;
