//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of the `rand` 0.8 surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64: deterministic per seed, statistically fine
//! for workload synthesis and jitter injection (its only uses here), and
//! trivially portable.  It is **not** cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be seeded from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core random-value methods (merged subset of `RngCore` + `Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T` (only `f64` in `[0, 1)` and
    /// the unsigned integer types are supported).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly distributed value in `range` (half-open).
    fn gen_range<T: UniformSampled>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

/// Value types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Value types usable with [`Rng::gen_range`] over a half-open range.
pub trait UniformSampled: Sized {
    /// Draw one value uniformly from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let width = (range.end - range.start) as u128;
                range.start + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

macro_rules! impl_uniform_signed {
    ($($t:ty as $wide:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let width = (range.end as $wide - range.start as $wide) as u128;
                (range.start as $wide + (rng.next_u64() as u128 % width) as $wide) as $t
            }
        }
    )*};
}

impl_uniform_signed!(isize as i128, i64 as i128, i32 as i64, i16 as i32, i8 as i16);

impl UniformSampled for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl UniformSampled for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// In-place random reordering (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
