//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! maps the `crossbeam::channel` API subset the workspace uses onto
//! `std::sync::mpsc` (whose `Sender` has been `Sync` since Rust 1.72,
//! which is what the shared `Arc<Vec<Sender<_>>>` peer tables rely on).

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};

    /// An unbounded FIFO channel (maps to `std::sync::mpsc::channel`).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
    }

    #[test]
    fn recv_timeout_reports_timeout_then_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn senders_are_shareable_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let peers = std::sync::Arc::new(vec![tx]);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let peers = std::sync::Arc::clone(&peers);
                std::thread::spawn(move || peers[0].send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(peers);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
