//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings, pass-through
//!   attributes and an optional `#![proptest_config(...)]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`],
//! * range strategies over the primitive numeric types (`lo..hi`,
//!   `lo..=hi`) and [`collection::vec`] for fixed-length vectors,
//! * [`test_runner::ProptestConfig`] with `with_cases` and the
//!   `PROPTEST_CASES` environment variable.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! generated inputs verbatim.  Generation is deterministic per test name so
//! failures reproduce across runs.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator; property runs derive the seed from the test name
    /// so each test gets an independent but reproducible stream.
    pub fn seed_from_u64(state: u64) -> Self {
        Self { state }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a single generated test case ended.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped, not failed.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type produced by the body of a generated property test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
///
/// Only generation is supported (no shrinking); `Debug` output of the
/// generated values is used in failure reports.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }

    /// Keep only values satisfying `f`; generation retries (up to a bound)
    /// until one passes, then panics citing `whence`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, filter: f, whence }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    filter: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.filter)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.whence);
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy yielding a constant value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy for vectors of a fixed length (subset of
    /// `proptest::collection::vec`, which also accepts length ranges).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `vec(element_strategy, len)` — a vector of exactly `len` elements.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(32);
            Self { cases }
        }
    }
}

/// Derive a per-test deterministic seed from the test's full module path and
/// name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

/// Assert a condition inside a property; on failure the case (with its
/// generated inputs) is reported and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} (left: {:?}, right: {:?})",
                file!(),
                line!(),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} == {} (left: {:?}, right: {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {} != {} (both: {:?})",
                file!(),
                line!(),
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Reject the current case (skip it without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test macro.  Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]`-style function (attributes are passed through)
/// that generates inputs and runs the body for the configured number of
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursive expander for [`proptest!`] — one arm per test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::seed_from_u64($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(50).max(200);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "property {} rejected too many cases ({} attempts for {} accepted)",
                    stringify!($name),
                    attempts,
                    accepted
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let __case_desc = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                    $(&$arg,)*
                );
                let mut __case = move || -> $crate::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                match __case() {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} cases: {}\ninputs:\n{}",
                            stringify!($name),
                            accepted,
                            msg,
                            __case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in -5i64..5, f in 0.25f64..0.75, p in 1u32..=100) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..=100).contains(&p));
        }

        #[test]
        fn vec_strategy_has_fixed_len(v in collection::vec(-1.0f64..1.0, 17)) {
            prop_assert_eq!(v.len(), 17);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a <= b);
            prop_assert!(b >= a);
        }

        #[test]
        fn map_and_filter_compose(x in (1usize..50).prop_filter("even only", |v| v % 2 == 0).prop_map(|v| v * 10)) {
            prop_assert_eq!(x % 20, 0);
            prop_assert!((20..500).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_is_accepted(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]

            #[allow(dead_code)]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
