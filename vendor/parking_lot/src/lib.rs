//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! wraps `std::sync` primitives behind the (non-poisoning) parking_lot API
//! subset the workspace uses: [`Mutex::lock`], [`Condvar::wait`],
//! [`Condvar::wait_until`] and the notify methods.  Poisoned locks are
//! recovered transparently, matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// A mutual-exclusion primitive (parking_lot-style: `lock()` returns the
/// guard directly, no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`].  Holds the std guard in an `Option` so a
/// [`Condvar`] can temporarily take ownership during a wait while the caller
/// keeps a `&mut` reference, matching parking_lot's `wait(&mut guard)` shape.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Whether a timed condition-variable wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable (parking_lot-style: waits take `&mut MutexGuard`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already waiting");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_until_times_out_without_notify() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        // The guard must still be usable after the wait.
        *g
    }

    #[test]
    fn notify_wakes_a_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }
}
