//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function` (with
//! either a string or a [`BenchmarkId`]), [`Bencher::iter`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Unlike real criterion there is no statistical analysis: each benchmark is
//! warmed up once and then timed over `sample_size` iterations, and the mean
//! per-iteration wall time is printed.  That is enough to eyeball relative
//! performance and, more importantly, keeps `cargo bench` compiling and
//! running without the real dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Identifier of one benchmark: a function name plus a parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    /// e.g. `"gaspi_ring"`.
    pub function_name: String,
    /// e.g. `"4x10000"`; empty when constructed from a bare string.
    pub parameter: String,
}

impl BenchmarkId {
    /// A benchmark id with an explicit parameter component.
    pub fn new(function_name: impl Into<String>, parameter: impl ToString) -> Self {
        Self { function_name: function_name.into(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function_name.clone()
        } else {
            format!("{}/{}", self.function_name, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { function_name: name.to_string(), parameter: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { function_name: name, parameter: String::new() }
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iterations {
            let _ = routine();
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's meaning is the
    /// number of samples; here it is used directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let iterations = if self.criterion.test_mode { 1 } else { self.sample_size.max(1) };
        let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / iterations as f64;
        println!("{}/{}: {:>12.3?} per iter ({} iters)", self.name, id.render(), Duration::from_secs_f64(per_iter), iterations);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` runs bench binaries with `--test`: run each
        // benchmark exactly once so the suite stays fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, criterion: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a group runner (subset of criterion's
/// macro: the plain `name, fn...` form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| calls += 1));
        group.finish();
        // warm-up + 3 timed iterations (or 1 in test mode)
        assert!(calls >= 2);
    }

    #[test]
    fn benchmark_id_renders_with_and_without_parameter() {
        assert_eq!(BenchmarkId::new("f", "4x8").render(), "f/4x8");
        assert_eq!(BenchmarkId::from("bare").render(), "bare");
    }
}
